package fault

import (
	"fmt"
	"strings"

	"marchgen/fsm"
)

// BFE is a Basic Fault Effect: one elementary way a fault instance departs
// from the fault-free memory, together with the Test Pattern that excites
// and observes it (paper §3).
type BFE struct {
	// Name identifies the effect within its instance, e.g. "flip 0->1".
	Name string
	// Pattern is the test pattern TP = (I, E, O) covering this BFE.
	Pattern fsm.Pattern
	// Deviation is the δ/λ deviation producing the effect, when the
	// instance is deviation-modelled (nil for address-fault instances,
	// whose behaviour is a whole remapping rather than a single edge).
	Deviation *fsm.Deviation
}

// Instance is one concrete defect hypothesis expressed on the two-cell
// memory model: a faulty Mealy machine plus its Basic Fault Effects.
//
// For a disjunctive instance (the default), covering any single BFE
// guarantees detection of the defect — the BFEs form one equivalence class
// in the sense of the paper's Section 5. For a conjunctive instance (e.g. a
// stuck-open cell, whose frozen value is unknown), every BFE's pattern must
// appear in the test to guarantee detection for every initial content.
type Instance struct {
	// Model is the name of the owning fault model, e.g. "CFid".
	Model string
	// Name identifies the instance, e.g. "CFid<u,0> agg=i".
	Name string
	// Machine is the faulty two-cell machine.
	Machine fsm.Machine
	// BFEs are the instance's basic fault effects, each with its pattern.
	BFEs []BFE
	// Conjunctive marks instances requiring all BFE patterns (see above).
	Conjunctive bool
}

// Validate checks the internal consistency of the instance: each pattern
// must be well-formed, and the patterns must actually guarantee detection
// of the instance's machine — each one individually for a disjunctive
// instance, their concatenation for a conjunctive one.
func (inst Instance) Validate() error {
	if len(inst.BFEs) == 0 {
		return fmt.Errorf("fault: instance %s has no BFEs", inst.Name)
	}
	for _, b := range inst.BFEs {
		if err := b.Pattern.Validate(); err != nil {
			return fmt.Errorf("fault: instance %s, BFE %s: %w", inst.Name, b.Name, err)
		}
	}
	if inst.Conjunctive {
		var seq []fsm.Input
		for _, b := range inst.BFEs {
			seq = append(seq, b.Pattern.Sequence()...)
		}
		if !fsm.Detects(inst.Machine, seq) {
			return fmt.Errorf("fault: instance %s: concatenated BFE patterns do not detect it", inst.Name)
		}
		return nil
	}
	for _, b := range inst.BFEs {
		if !fsm.DetectsPattern(inst.Machine, b.Pattern) &&
			!fsm.DetectsPatternEstablished(inst.Machine, b.Pattern) {
			return fmt.Errorf("fault: instance %s: pattern %s of BFE %s does not detect it",
				inst.Name, b.Pattern, b.Name)
		}
	}
	return nil
}

// Model is a named memory fault model: a family of fault instances that a
// test must all detect to claim coverage of the model.
type Model struct {
	// Name is the canonical model name, e.g. "SAF", "CFid", "ADF".
	Name string
	// Description is a one-line human description.
	Description string
	// Instances are the concrete defect hypotheses of the model.
	Instances []Instance
}

// Custom assembles a user-defined fault model from explicit instances,
// fulfilling the paper's goal of an extensible, unconstrained fault list.
// Each instance is validated.
func Custom(name, description string, instances ...Instance) (Model, error) {
	if name == "" {
		return Model{}, fmt.Errorf("fault: custom model needs a name")
	}
	if len(instances) == 0 {
		return Model{}, fmt.Errorf("fault: custom model %s has no instances", name)
	}
	for i := range instances {
		if instances[i].Model == "" {
			instances[i].Model = name
		}
		if err := instances[i].Validate(); err != nil {
			return Model{}, err
		}
	}
	return Model{Name: name, Description: description, Instances: instances}, nil
}

// Key renders an instance list as a canonical text: per instance its
// name, conjunctive flag, and every BFE's pattern and deviation. Two
// lists with the same Key pose the same generation problem, which is what
// the engine's content-addressed memo cache keys on — instance names alone
// would alias user-defined models that reuse a name with new semantics.
func Key(instances []Instance) string {
	var b strings.Builder
	for _, inst := range instances {
		b.WriteString(inst.Model)
		b.WriteByte('/')
		b.WriteString(inst.Name)
		if inst.Conjunctive {
			b.WriteString("/conj")
		}
		for _, bfe := range inst.BFEs {
			b.WriteByte('{')
			b.WriteString(bfe.Name)
			b.WriteByte(':')
			b.WriteString(bfe.Pattern.String())
			if d := bfe.Deviation; d != nil {
				b.WriteByte(':')
				b.WriteString(d.When.String())
				b.WriteByte('@')
				b.WriteString(d.On.String())
				if d.Next != nil {
					b.WriteString("->")
					b.WriteString(d.Next.String())
				}
				if d.Out != nil {
					b.WriteString("=>")
					b.WriteString(d.Out.String())
				}
			}
			b.WriteByte('}')
		}
		b.WriteByte(';')
	}
	return b.String()
}

// Instances flattens the instance lists of several models, preserving
// order and skipping duplicates by instance name.
func Instances(models []Model) []Instance {
	var out []Instance
	seen := map[string]bool{}
	for _, m := range models {
		for _, inst := range m.Instances {
			if seen[inst.Name] {
				continue
			}
			seen[inst.Name] = true
			out = append(out, inst)
		}
	}
	return out
}
