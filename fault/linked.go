package fault

import (
	"fmt"

	"marchgen/fsm"
	"marchgen/march"
)

// FromLinkedDeviations builds an instance of a *linked* fault: a single
// defect whose deviations can mask one another (the classic example being
// two coupling faults sharing a victim, where the second fault restores
// the value the first one corrupted). Unlike FromDeviations, a derived
// pattern is kept as an equivalence-class option only if it individually
// guarantees detection of the *combined* machine — patterns neutralised by
// masking are dropped. The instance is rejected when masking defeats every
// pattern (the fault would need a richer excitation than single BFE
// patterns provide).
func FromLinkedDeviations(model, name string, devs ...fsm.Deviation) (Instance, error) {
	if len(devs) < 2 {
		return Instance{}, fmt.Errorf("fault: linked instance %s needs at least two deviations", name)
	}
	inst := Instance{
		Model:   model,
		Name:    name,
		Machine: fsm.WithDeviations(name, devs...),
	}
	for k := range devs {
		dev := devs[k]
		p, err := PatternForDeviation(dev)
		if err != nil {
			// A deviation may be individually unobservable inside the
			// linked machine; it still shapes the behaviour.
			continue
		}
		if !fsm.DetectsPattern(inst.Machine, p) &&
			!fsm.DetectsPatternEstablished(inst.Machine, p) {
			continue // masked: not a usable observation point
		}
		inst.BFEs = append(inst.BFEs, BFE{
			Name:      fmt.Sprintf("bfe%d %s", k, dev),
			Pattern:   p,
			Deviation: &dev,
		})
	}
	if len(inst.BFEs) == 0 {
		return Instance{}, fmt.Errorf("fault: linked instance %s: every pattern is masked", name)
	}
	if err := inst.Validate(); err != nil {
		return Instance{}, err
	}
	return inst, nil
}

// lcf builds the linked idempotent coupling fault model: two idempotent
// coupling faults with the same aggressor and victim but opposite
// aggressor transitions, ⟨↑;d₁⟩ ∧ ⟨↓;d₂⟩. When d₁ = complement of d₂ the
// pair is the hardest case of van de Goor's linked-fault taxonomy: a test
// that excites both transitions back-to-back observes nothing.
//
// Unlike the unlinked library builders, lcf returns an error rather than
// panicking: whether masking defeats every pattern of a linked pair is a
// property of the combined machine, decided by product-machine
// simulation inside FromLinkedDeviations, not by inspection of the
// definitions here.
func lcf() (Model, error) {
	var insts []Instance
	for _, d1 := range []march.Bit{b0, b1} {
		for _, d2 := range []march.Bit{b0, b1} {
			for _, agg := range fsm.Cells() {
				vic := agg.Other()
				name := fmt.Sprintf("LCF<u,%s;d,%s> agg=%s", d1, d2, agg)
				up := fsm.TransitionDev(
					st(bx, bx).With(agg, b0).With(vic, d1.Not()), fsm.Wr(agg, b1),
					st(bx, bx).With(vic, d1))
				down := fsm.TransitionDev(
					st(bx, bx).With(agg, b1).With(vic, d2.Not()), fsm.Wr(agg, b0),
					st(bx, bx).With(vic, d2))
				inst, err := FromLinkedDeviations("LCF", name, up, down)
				if err != nil {
					return Model{}, err
				}
				insts = append(insts, inst)
			}
		}
	}
	return Model{
		Name:        "LCF",
		Description: "linked idempotent coupling faults ⟨↑;d₁⟩ ∧ ⟨↓;d₂⟩: same aggressor/victim pair, potentially masking",
		Instances:   insts,
	}, nil
}
