package fault

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"marchgen/internal/budget"
)

// builders maps canonical model names to their constructors. Models are
// built lazily and cached: construction validates every instance, which
// involves product-machine simulation. A builder error surfaces from
// Parse wrapped in budget.ErrUnsupportedFault.
var builders = map[string]func() (Model, error){
	"SAF":  infallible(saf),
	"TF":   infallible(tf),
	"WDF":  infallible(wdf),
	"RDF":  infallible(rdf),
	"DRDF": infallible(drdf),
	"IRF":  infallible(irf),
	"SOF":  infallible(sof),
	"DRF":  infallible(drf),
	"CFIN": infallible(cfin),
	"CFID": infallible(cfid),
	"CFST": infallible(cfst),
	"ADF":  infallible(af),
	"LCF":  lcf,
}

// infallible adapts a library builder whose definitions are fixed and
// fully checked by the package tests, so it cannot fail at runtime.
func infallible(build func() Model) func() (Model, error) {
	return func() (Model, error) { return build(), nil }
}

// aliases maps accepted spellings to canonical names.
var aliases = map[string]string{
	"AF": "ADF",
}

var (
	cacheMu sync.Mutex
	cache   = map[string]Model{}
)

// ModelNames returns the canonical names of all built-in fault models,
// sorted.
func ModelNames() []string {
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, n := range names {
		names[i] = canonicalSpelling(n)
	}
	sort.Strings(names)
	return names
}

// canonicalSpelling restores the conventional mixed-case spelling of a
// canonical (upper-case) model name.
func canonicalSpelling(upper string) string {
	switch upper {
	case "CFIN":
		return "CFin"
	case "CFID":
		return "CFid"
	case "CFST":
		return "CFst"
	default:
		return upper
	}
}

// lookup returns the cached full model for a canonical name. The
// boolean reports whether the name exists; a non-nil error means the
// name exists but its builder failed.
func lookup(canonical string) (Model, bool, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if m, ok := cache[canonical]; ok {
		return m, true, nil
	}
	build, ok := builders[canonical]
	if !ok {
		return Model{}, false, nil
	}
	m, err := build()
	if err != nil {
		return Model{}, true, err
	}
	cache[canonical] = m
	return m, true, nil
}

// Parse resolves a fault-model name into a Model. Beyond the plain model
// names (case-insensitive: "SAF", "TF", "ADF", "CFin", "CFid", "CFst",
// "SOF", "DRF", "RDF", "DRDF", "IRF", "WDF"), a parameter list selects a
// sub-model whose instance names start with the given variant, e.g.
// "CFid<u,0>" (the ⟨↑;0⟩ idempotent coupling fault, both aggressor orders)
// or "TF<u>".
func Parse(name string) (Model, error) {
	trimmed := strings.TrimSpace(name)
	base := trimmed
	variant := ""
	if open := strings.IndexByte(trimmed, '<'); open >= 0 {
		if !strings.HasSuffix(trimmed, ">") {
			return Model{}, fmt.Errorf("fault: malformed fault name %q", name)
		}
		base = strings.TrimSpace(trimmed[:open])
		variant = strings.ToLower(strings.ReplaceAll(trimmed[open:], " ", ""))
	}
	canonical := strings.ToUpper(base)
	if alias, ok := aliases[canonical]; ok {
		canonical = alias
	}
	// Convenience spellings for individual stuck-at faults.
	switch canonical {
	case "SA0":
		canonical, variant = "SAF", "" // filtered below by instance name
	case "SA1":
		canonical, variant = "SAF", ""
	}
	m, ok, err := lookup(canonical)
	if err != nil {
		return Model{}, fmt.Errorf("fault: building fault model %q: %v: %w",
			name, err, budget.ErrUnsupportedFault)
	}
	if !ok {
		return Model{}, fmt.Errorf("fault: unknown fault model %q (known: %s): %w",
			name, strings.Join(ModelNames(), ", "), budget.ErrUnsupportedFault)
	}
	filter := ""
	switch strings.ToUpper(base) {
	case "SA0", "SA1":
		filter = strings.ToUpper(base)
	default:
		if variant != "" {
			filter = canonicalSpelling(canonical) + variant
		}
	}
	if filter == "" {
		return m, nil
	}
	sub := Model{
		Name:        trimmed,
		Description: m.Description + " (variant " + trimmed + ")",
	}
	for _, inst := range m.Instances {
		if strings.HasPrefix(strings.ToLower(inst.Name), strings.ToLower(filter)) {
			sub.Instances = append(sub.Instances, inst)
		}
	}
	if len(sub.Instances) == 0 {
		return Model{}, fmt.Errorf("fault: fault model %q selects no instances: %w", name, budget.ErrUnsupportedFault)
	}
	return sub, nil
}

// ParseList parses a comma-separated fault list, e.g. "SAF,TF,ADF" or
// "CFid<u,0>, CFid<u,1>".
func ParseList(list string) ([]Model, error) {
	var models []Model
	for _, part := range splitList(list) {
		m, err := Parse(part)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("fault: empty fault list %q", list)
	}
	return models, nil
}

// splitList splits on commas that are not inside <...> parameter lists.
func splitList(list string) []string {
	var parts []string
	depth := 0
	start := 0
	for k := 0; k < len(list); k++ {
		switch list[k] {
		case '<':
			depth++
		case '>':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				if p := strings.TrimSpace(list[start:k]); p != "" {
					parts = append(parts, p)
				}
				start = k + 1
			}
		}
	}
	if p := strings.TrimSpace(list[start:]); p != "" {
		parts = append(parts, p)
	}
	return parts
}
