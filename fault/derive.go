package fault

import (
	"fmt"

	"marchgen/fsm"
	"marchgen/march"
)

// PatternForDeviation derives the Test Pattern TP = (I, E, O) covering a
// single deviation, following the paper's Section 3:
//
//   - the initialisation state I is the deviation's trigger state;
//   - the excitation E is the triggering operation (empty when the
//     deviation is a pure read-output fault, because the observing read
//     itself excites it);
//   - the observation O reads the cell whose faulty value differs from the
//     fault-free one.
func PatternForDeviation(dev fsm.Deviation) (fsm.Pattern, error) {
	good := fsm.Good()
	init := dev.When

	// Pure output deviation: the triggering read observes the wrong value
	// directly, provided the fault-free value is known and different.
	if dev.Next == nil {
		if dev.Out == nil {
			return fsm.Pattern{}, fmt.Errorf("fault: deviation %s has no effect", dev)
		}
		if !dev.On.IsRead() {
			return fsm.Pattern{}, fmt.Errorf("fault: output deviation %s must trigger on a read", dev)
		}
		p := fsm.NewPattern(constrainRead(init, dev.On, *dev.Out), nil, dev.On)
		if err := p.Validate(); err != nil {
			return fsm.Pattern{}, err
		}
		if p.GoodObservation() == *dev.Out {
			return fsm.Pattern{}, fmt.Errorf("fault: output deviation %s is unobservable", dev)
		}
		return p, nil
	}

	// Transition deviation (possibly combined with an output deviation):
	// compare fault-free and faulty next states and observe a corrupted
	// cell. When the combined output deviation already exposes the fault
	// at the trigger itself, observe there.
	goodNext := good.Next(init, dev.On)
	faultyNext := goodNext.Merge(*dev.Next)
	if dev.Out != nil && dev.On.IsRead() {
		p := fsm.NewPattern(constrainRead(init, dev.On, *dev.Out), nil, dev.On)
		if err := p.Validate(); err == nil && p.GoodObservation() != *dev.Out {
			return p, nil
		}
	}
	for _, c := range fsm.Cells() {
		g, f := goodNext.Get(c), faultyNext.Get(c)
		if g.Known() && f.Known() && g != f {
			p := fsm.NewPattern(init, []fsm.Input{dev.On}, fsm.Rd(c))
			if err := p.Validate(); err != nil {
				return fsm.Pattern{}, err
			}
			return p, nil
		}
		// The corrupted cell's fault-free value may be unconstrained by
		// the trigger state (e.g. a forcing deviation); pin it to the
		// complement of the faulty value so the corruption is observable.
		if !g.Known() && f.Known() {
			pinned := init.With(c, f.Not())
			p := fsm.NewPattern(pinned, []fsm.Input{dev.On}, fsm.Rd(c))
			if err := p.Validate(); err != nil {
				return fsm.Pattern{}, err
			}
			return p, nil
		}
	}
	return fsm.Pattern{}, fmt.Errorf("fault: transition deviation %s is unobservable", dev)
}

// constrainRead pins the read cell of an output-deviation pattern to a
// concrete value when the trigger state leaves it free, choosing the
// complement of the faulty output so the mismatch is guaranteed.
func constrainRead(init fsm.State, read fsm.Input, out march.Bit) fsm.State {
	if init.Get(read.Cell).Known() {
		return init
	}
	if out.Known() {
		return init.With(read.Cell, out.Not())
	}
	return init.With(read.Cell, march.Zero)
}

// FromDeviations builds a deviation-modelled fault instance: the machine
// carries every deviation, and each deviation contributes one BFE with an
// automatically derived pattern. The instance is validated before being
// returned.
func FromDeviations(model, name string, conjunctive bool, devs ...fsm.Deviation) (Instance, error) {
	if len(devs) == 0 {
		return Instance{}, fmt.Errorf("fault: instance %s has no deviations", name)
	}
	inst := Instance{
		Model:       model,
		Name:        name,
		Machine:     fsm.WithDeviations(name, devs...),
		Conjunctive: conjunctive,
	}
	for k := range devs {
		dev := devs[k]
		p, err := PatternForDeviation(dev)
		if err != nil {
			return Instance{}, fmt.Errorf("fault: instance %s: %w", name, err)
		}
		inst.BFEs = append(inst.BFEs, BFE{
			Name:      fmt.Sprintf("bfe%d %s", k, dev),
			Pattern:   p,
			Deviation: &dev,
		})
	}
	if err := inst.Validate(); err != nil {
		return Instance{}, err
	}
	return inst, nil
}
