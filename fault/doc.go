// Package fault is the memory fault-model library of the March test
// generator: a catalogue of classical RAM fault models expressed on the
// two-cell behavioural memory model of package fsm, plus support for
// user-defined faults (the paper's "unconstrained set of memory faults").
//
// Each fault Model expands into concrete Instances — one per defect
// hypothesis, covering both aggressor/victim address orders for two-cell
// faults and every remapping direction for address-decoder faults. Each
// instance carries its faulty Mealy machine and its Basic Fault Effects
// (BFEs), each paired with the Test Pattern TP = (I, E, O) that excites and
// observes it. BFE patterns are derived automatically from the δ/λ
// deviations (PatternForDeviation) and validated against the instance's
// machine under the guaranteed-detection semantics, so a library or user
// error cannot silently produce an unsound pattern.
//
// Built-in models: SAF (stuck-at), TF (transition), WDF (write
// destructive), RDF / DRDF / IRF (read faults per Niggemeyer et al.), SOF
// (stuck-open), DRF (data retention), ADF (address decoder, van de Goor's
// four types), CFin / CFid / CFst (inversion, idempotent, state coupling).
package fault
