package fault

import (
	"fmt"

	"marchgen/fsm"
	"marchgen/march"
)

// Shorthands used throughout the library definitions.
var (
	b0 = march.Zero
	b1 = march.One
	bx = march.X
	ci = fsm.CellI
	cj = fsm.CellJ
)

func st(i, j march.Bit) fsm.State { return fsm.S(i, j) }

// must unwraps an instance-constructor result for the built-in library
// definitions in this file. The builders run once, when a model is
// first looked up, and operate only on the fixed definitions below —
// never on user input — so a failure is a defect in the library itself
// and panicking is intentional; every model is exercised by the package
// tests, which turn such a panic into an immediate failure. Everything
// user-reachable (Parse, ParseList, FromDeviations,
// FromLinkedDeviations) returns errors instead.
func must(inst Instance, err error) Instance {
	if err != nil {
		panic(err)
	}
	return inst
}

// mustFromDeviations is must(FromDeviations(...)), the common shape of
// the library definitions below.
func mustFromDeviations(model, name string, conjunctive bool, devs ...fsm.Deviation) Instance {
	return must(FromDeviations(model, name, conjunctive, devs...))
}

// dirString renders a transition direction for fault names: "u" for a
// rising (0→1) aggressor write, "d" for a falling one.
func dirString(up bool) string {
	if up {
		return "u"
	}
	return "d"
}

// saf builds the stuck-at fault model. A stuck-at-d cell ignores writes of
// the complementary value: the deviation forces the cell back to d from any
// state, which also captures the cell's power-up content being d.
func saf() Model {
	sa0 := mustFromDeviations("SAF", "SA0", false,
		fsm.TransitionDev(fsm.Unknown, fsm.Wr(ci, b1), st(b0, bx)))
	sa1 := mustFromDeviations("SAF", "SA1", false,
		fsm.TransitionDev(fsm.Unknown, fsm.Wr(ci, b0), st(b1, bx)))
	return Model{
		Name:        "SAF",
		Description: "stuck-at faults: a cell is permanently 0 (SA0) or 1 (SA1)",
		Instances:   []Instance{sa0, sa1},
	}
}

// tf builds the transition fault model: the cell fails a specific 0→1 or
// 1→0 transition but can hold either value.
func tf() Model {
	up := mustFromDeviations("TF", "TF<u>", false,
		fsm.TransitionDev(st(b0, bx), fsm.Wr(ci, b1), st(b0, bx)))
	down := mustFromDeviations("TF", "TF<d>", false,
		fsm.TransitionDev(st(b1, bx), fsm.Wr(ci, b0), st(b1, bx)))
	return Model{
		Name:        "TF",
		Description: "transition faults: a cell fails its up (TF<u>) or down (TF<d>) transition",
		Instances:   []Instance{up, down},
	}
}

// wdf builds the write destructive fault model: a non-transition write
// (writing the value already stored) flips the cell.
func wdf() Model {
	var insts []Instance
	for _, d := range []march.Bit{b0, b1} {
		name := fmt.Sprintf("WDF<%s>", d)
		insts = append(insts, mustFromDeviations("WDF", name, false,
			fsm.TransitionDev(st(d, bx), fsm.Wr(ci, d), st(d.Not(), bx))))
	}
	return Model{
		Name:        "WDF",
		Description: "write destructive faults: a non-transition write flips the cell",
		Instances:   insts,
	}
}

// rdf builds the read destructive fault model: a read flips the cell and
// returns the flipped value.
func rdf() Model {
	var insts []Instance
	for _, d := range []march.Bit{b0, b1} {
		name := fmt.Sprintf("RDF<%s>", d)
		insts = append(insts, mustFromDeviations("RDF", name, false,
			fsm.TransitionOutputDev(st(d, bx), fsm.Rd(ci), st(d.Not(), bx), d.Not())))
	}
	return Model{
		Name:        "RDF",
		Description: "read destructive faults: a read flips the cell and returns the flipped value",
		Instances:   insts,
	}
}

// drdf builds the deceptive read destructive fault model: a read flips the
// cell but still returns the correct value, so a second read is needed.
func drdf() Model {
	var insts []Instance
	for _, d := range []march.Bit{b0, b1} {
		name := fmt.Sprintf("DRDF<%s>", d)
		insts = append(insts, mustFromDeviations("DRDF", name, false,
			fsm.TransitionDev(st(d, bx), fsm.Rd(ci), st(d.Not(), bx))))
	}
	return Model{
		Name:        "DRDF",
		Description: "deceptive read destructive faults: a read flips the cell but returns the old value",
		Instances:   insts,
	}
}

// irf builds the incorrect read fault model: a read returns the wrong value
// without disturbing the cell.
func irf() Model {
	var insts []Instance
	for _, d := range []march.Bit{b0, b1} {
		name := fmt.Sprintf("IRF<%s>", d)
		insts = append(insts, mustFromDeviations("IRF", name, false,
			fsm.OutputDev(st(d, bx), fsm.Rd(ci), d.Not())))
	}
	return Model{
		Name:        "IRF",
		Description: "incorrect read faults: a read returns the complement of the stored value",
		Instances:   insts,
	}
}

// sof builds the stuck-open fault model: the cell cannot be written at all
// and is frozen at its (unknown) power-up value. The instance is
// conjunctive: both the r0-after-w0 and r1-after-w1 patterns are required,
// because either frozen value escapes one of them.
func sof() Model {
	inst := mustFromDeviations("SOF", "SOF", true,
		fsm.TransitionDev(st(b0, bx), fsm.Wr(ci, b1), st(b0, bx)),
		fsm.TransitionDev(st(b1, bx), fsm.Wr(ci, b0), st(b1, bx)))
	return Model{
		Name:        "SOF",
		Description: "stuck-open faults: the cell is inaccessible for writes and frozen at its power-up value",
		Instances:   []Instance{inst},
	}
}

// drf builds the data retention fault model: after the wait period T the
// cell leaks to a fixed value.
func drf() Model {
	var insts []Instance
	for _, d := range []march.Bit{b0, b1} {
		name := fmt.Sprintf("DRF<%s>", d.Not())
		insts = append(insts, mustFromDeviations("DRF", name, false,
			fsm.TransitionDev(st(d, bx), fsm.Wait, st(d.Not(), bx))))
	}
	return Model{
		Name:        "DRF",
		Description: "data retention faults: the cell leaks to a fixed value during the wait period T",
		Instances:   insts,
	}
}

// cfin builds the inversion coupling fault model: a rising or falling write
// on the aggressor inverts the victim, whatever its value. Each instance
// carries two BFEs (victim 0→1 and 1→0); covering either one certifies
// detection — the paper's Section 5 equivalence example.
func cfin() Model {
	var insts []Instance
	for _, up := range []bool{true, false} {
		from, to := b0, b1
		if !up {
			from, to = b1, b0
		}
		for _, agg := range fsm.Cells() {
			vic := agg.Other()
			name := fmt.Sprintf("CFin<%s> agg=%s", dirString(up), agg)
			flip01 := fsm.TransitionDev(
				st(bx, bx).With(agg, from).With(vic, b0), fsm.Wr(agg, to),
				st(bx, bx).With(vic, b1))
			flip10 := fsm.TransitionDev(
				st(bx, bx).With(agg, from).With(vic, b1), fsm.Wr(agg, to),
				st(bx, bx).With(vic, b0))
			insts = append(insts, mustFromDeviations("CFin", name, false, flip01, flip10))
		}
	}
	return Model{
		Name:        "CFin",
		Description: "inversion coupling faults: an aggressor transition inverts the victim cell",
		Instances:   insts,
	}
}

// cfid builds the idempotent coupling fault model ⟨t;d⟩: an aggressor
// transition t forces the victim to d.
func cfid() Model {
	var insts []Instance
	for _, up := range []bool{true, false} {
		from, to := b0, b1
		if !up {
			from, to = b1, b0
		}
		for _, d := range []march.Bit{b0, b1} {
			for _, agg := range fsm.Cells() {
				vic := agg.Other()
				name := fmt.Sprintf("CFid<%s,%s> agg=%s", dirString(up), d, agg)
				dev := fsm.TransitionDev(
					st(bx, bx).With(agg, from).With(vic, d.Not()), fsm.Wr(agg, to),
					st(bx, bx).With(vic, d))
				insts = append(insts, mustFromDeviations("CFid", name, false, dev))
			}
		}
	}
	return Model{
		Name:        "CFid",
		Description: "idempotent coupling faults ⟨t;d⟩: an aggressor transition forces the victim to d",
		Instances:   insts,
	}
}

// cfst builds the state coupling fault model ⟨a;v⟩: while the aggressor
// holds value a, the victim is forced to v. Each instance has two BFEs:
// the victim refuses the complementary write, and the aggressor's
// transition into a corrupts the victim.
func cfst() Model {
	var insts []Instance
	for _, a := range []march.Bit{b0, b1} {
		for _, v := range []march.Bit{b0, b1} {
			for _, agg := range fsm.Cells() {
				vic := agg.Other()
				name := fmt.Sprintf("CFst<%s,%s> agg=%s", a, v, agg)
				refuse := fsm.TransitionDev(
					st(bx, bx).With(agg, a), fsm.Wr(vic, v.Not()),
					st(bx, bx).With(vic, v))
				corrupt := fsm.TransitionDev(
					st(bx, bx).With(agg, a.Not()).With(vic, v.Not()), fsm.Wr(agg, a),
					st(bx, bx).With(vic, v))
				insts = append(insts, mustFromDeviations("CFst", name, false, refuse, corrupt))
			}
		}
	}
	return Model{
		Name:        "CFst",
		Description: "state coupling faults ⟨a;v⟩: the victim is forced to v while the aggressor holds a",
		Instances:   insts,
	}
}

// af builds the address decoder fault model following van de Goor's four AF
// types, expressed as address-to-cell access remappings: an address maps to
// no cell (with a floating read line), to the wrong cell, or to several
// cells (with wired-OR or wired-AND read combination).
func af() Model {
	var insts []Instance

	// Type A: an address accesses no cell; the read line floats at f.
	for _, f := range []march.Bit{b0, b1} {
		m := fsm.AccessMap{
			Name:   fmt.Sprintf("AF-A<float=%s>", f),
			Writes: [2][]fsm.Cell{nil, {cj}},
			Reads:  [2][]fsm.Cell{nil, {cj}},
			Float:  f,
		}
		insts = append(insts, must(afInstance(m, []fsm.Pattern{
			fsm.NewPattern(st(f.Not(), bx), nil, fsm.Rd(ci)),
		})))
	}

	// Type B/C: an address accesses the wrong cell (and the displaced
	// cell becomes unreachable, shared with the other address).
	bij := fsm.AccessMap{
		Name:   "AF-B<i->j>",
		Writes: [2][]fsm.Cell{{cj}, {cj}},
		Reads:  [2][]fsm.Cell{{cj}, {cj}},
	}
	insts = append(insts, must(afInstance(bij, []fsm.Pattern{
		fsm.NewPattern(st(b0, bx), []fsm.Input{fsm.Wr(cj, b1)}, fsm.Rd(ci)),
		fsm.NewPattern(st(b1, bx), []fsm.Input{fsm.Wr(cj, b0)}, fsm.Rd(ci)),
	})))
	bji := fsm.AccessMap{
		Name:   "AF-B<j->i>",
		Writes: [2][]fsm.Cell{{ci}, {ci}},
		Reads:  [2][]fsm.Cell{{ci}, {ci}},
	}
	insts = append(insts, must(afInstance(bji, []fsm.Pattern{
		fsm.NewPattern(st(bx, b0), []fsm.Input{fsm.Wr(ci, b1)}, fsm.Rd(cj)),
		fsm.NewPattern(st(bx, b1), []fsm.Input{fsm.Wr(ci, b0)}, fsm.Rd(cj)),
	})))

	// Type D: an address accesses its own cell plus another one.
	for _, comb := range []fsm.Comb{fsm.CombOr, fsm.CombAnd} {
		d := b1 // the write value that disturbs the extra cell
		if comb == fsm.CombAnd {
			d = b0
		}
		dij := fsm.AccessMap{
			Name:   fmt.Sprintf("AF-D<i->ij,%s>", comb),
			Writes: [2][]fsm.Cell{{ci, cj}, {cj}},
			Reads:  [2][]fsm.Cell{{ci, cj}, {cj}},
			Comb:   comb,
		}
		insts = append(insts, must(afInstance(dij, []fsm.Pattern{
			fsm.NewPattern(st(bx, d.Not()), []fsm.Input{fsm.Wr(ci, d)}, fsm.Rd(cj)),
			fsm.NewPattern(st(d.Not(), d), nil, fsm.Rd(ci)),
		})))
		dji := fsm.AccessMap{
			Name:   fmt.Sprintf("AF-D<j->ij,%s>", comb),
			Writes: [2][]fsm.Cell{{ci}, {ci, cj}},
			Reads:  [2][]fsm.Cell{{ci}, {ci, cj}},
			Comb:   comb,
		}
		insts = append(insts, must(afInstance(dji, []fsm.Pattern{
			fsm.NewPattern(st(d.Not(), bx), []fsm.Input{fsm.Wr(cj, d)}, fsm.Rd(ci)),
			fsm.NewPattern(st(bx, d.Not()), []fsm.Input{fsm.Wr(ci, d)}, fsm.Rd(cj)),
		})))
	}

	return Model{
		Name:        "ADF",
		Description: "address decoder faults: no access, wrong cell, or multiple cells per address",
		Instances:   insts,
	}
}

// afInstance assembles an address-fault instance from its access map and
// hand-derived patterns; a pattern failing to detect the machine is a
// library programming error, surfaced through must at the call sites.
func afInstance(m fsm.AccessMap, patterns []fsm.Pattern) (Instance, error) {
	inst := Instance{Model: "ADF", Name: m.Name, Machine: m.Machine()}
	for k, p := range patterns {
		inst.BFEs = append(inst.BFEs, BFE{
			Name:    fmt.Sprintf("bfe%d %s", k, p),
			Pattern: p,
		})
	}
	if err := inst.Validate(); err != nil {
		return Instance{}, err
	}
	return inst, nil
}
