package marchgen

import (
	"context"
	"errors"
	"testing"
)

// propertyLists are the fault-list subsets the parallel/caching properties
// are checked over: single models, the paper's Table 3 prefixes and a
// parameterized instance list.
var propertyLists = []string{
	"SAF",
	"TF",
	"CFin",
	"SAF,TF",
	"SAF,TF,ADF",
	"SAF,TF,ADF,CFin",
}

// TestParallelMatchesSequential is the tentpole's central property: the
// generated test, its complexity and the optimal path cost are
// byte-identical at any worker count (run under -cpu 1,2,8 and -race in
// CI to vary real parallelism and scheduling).
func TestParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for _, faults := range propertyLists {
		want, err := GenerateCtx(ctx, faults, WithWorkers(1), WithoutCache())
		if err != nil {
			t.Fatalf("%s sequential: %v", faults, err)
		}
		for _, workers := range []int{2, 4, 0} {
			got, err := GenerateCtx(ctx, faults, WithWorkers(workers), WithoutCache())
			if err != nil {
				t.Fatalf("%s workers=%d: %v", faults, workers, err)
			}
			if got.Test.String() != want.Test.String() {
				t.Errorf("%s workers=%d: test %q, sequential %q",
					faults, workers, got.Test, want.Test)
			}
			if got.Complexity != want.Complexity {
				t.Errorf("%s workers=%d: complexity %d, sequential %d",
					faults, workers, got.Complexity, want.Complexity)
			}
			if got.Stats.PathCost != want.Stats.PathCost {
				t.Errorf("%s workers=%d: path cost %d, sequential %d",
					faults, workers, got.Stats.PathCost, want.Stats.PathCost)
			}
		}
	}
}

// TestGeneratedTestsCompleteAndNonRedundant checks the paper's two output
// guarantees hold for every subset, at more than one worker count: the
// simulator detects every fault instance, and no operation is wasted.
func TestGeneratedTestsCompleteAndNonRedundant(t *testing.T) {
	ctx := context.Background()
	for _, faults := range propertyLists {
		for _, workers := range []int{1, 4} {
			res, err := GenerateCtx(ctx, faults, WithWorkers(workers), WithoutCache())
			if err != nil {
				t.Fatalf("%s workers=%d: %v", faults, workers, err)
			}
			rep, err := VerifyWorkersCtx(ctx, res.Test, faults, workers)
			if err != nil {
				t.Fatalf("%s workers=%d verify: %v", faults, workers, err)
			}
			if !rep.Complete {
				t.Errorf("%s workers=%d: incomplete, missed %v", faults, workers, rep.Missed)
			}
			if !rep.NonRedundant {
				t.Errorf("%s workers=%d: redundant ops %v, reads %v",
					faults, workers, rep.RemovableOps, rep.RedundantReads)
			}
		}
	}
}

// TestCacheWarmHitIsIdentical checks the memo-cache contract: the second
// generation of the same fault list is served from the cache
// (Stats.FromCache), is byte-identical to the cold run, and does not alias
// the cached value (mutating one result must not corrupt the next).
func TestCacheWarmHitIsIdentical(t *testing.T) {
	ctx := context.Background()
	defer ResetCache()
	for _, faults := range propertyLists {
		ResetCache()
		cold, err := GenerateCtx(ctx, faults, WithWorkers(1))
		if err != nil {
			t.Fatalf("%s cold: %v", faults, err)
		}
		if cold.Stats.FromCache {
			t.Fatalf("%s: cold run claims a cache hit", faults)
		}
		warm, err := GenerateCtx(ctx, faults, WithWorkers(1))
		if err != nil {
			t.Fatalf("%s warm: %v", faults, err)
		}
		if !warm.Stats.FromCache {
			t.Errorf("%s: warm run was not served from the cache", faults)
		}
		if warm.Test.String() != cold.Test.String() || warm.Complexity != cold.Complexity {
			t.Errorf("%s: warm %q (k=%d) differs from cold %q (k=%d)",
				faults, warm.Test, warm.Complexity, cold.Test, cold.Complexity)
		}
		// The cached entry hands out clones: mutate this result and re-read.
		if len(warm.Test.Elements) > 0 {
			warm.Test.Elements = warm.Test.Elements[:0]
		}
		again, err := GenerateCtx(ctx, faults, WithWorkers(1))
		if err != nil {
			t.Fatalf("%s again: %v", faults, err)
		}
		if again.Test.String() != cold.Test.String() {
			t.Errorf("%s: mutating a cached result leaked back: %q", faults, again.Test)
		}
	}
}

// TestCacheAcrossWorkerCounts checks the cache key deliberately excludes
// the worker count: a result primed sequentially serves parallel callers,
// because results are identical at any worker count.
func TestCacheAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	defer ResetCache()
	ResetCache()
	cold, err := GenerateCtx(ctx, "SAF,TF", WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := GenerateCtx(ctx, "SAF,TF", WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.FromCache {
		t.Error("worker count leaked into the cache key")
	}
	if warm.Test.String() != cold.Test.String() {
		t.Errorf("cached %q differs from cold %q", warm.Test, cold.Test)
	}
}

// TestWithoutCacheBypasses checks WithoutCache never reports (or creates)
// cache hits, and that option-bearing runs use distinct cache keys from
// default runs.
func TestWithoutCacheBypasses(t *testing.T) {
	ctx := context.Background()
	defer ResetCache()
	ResetCache()
	if _, err := GenerateCtx(ctx, "SAF", WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	res, err := GenerateCtx(ctx, "SAF", WithWorkers(1), WithoutCache())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FromCache {
		t.Error("WithoutCache run was served from the cache")
	}
	// A different option set must not collide with the cached default run.
	shrunk, err := GenerateCtx(ctx, "SAF", WithWorkers(1), WithoutShrink())
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Stats.FromCache {
		t.Error("WithoutShrink run hit the default run's cache entry")
	}
}

// TestBudgetedRunsBypassCache checks the budget/cache rule: a budgeted run
// must not be served a cached unbudgeted result (its degradation semantics
// would silently change), and must not poison the cache for later
// unbudgeted calls.
func TestBudgetedRunsBypassCache(t *testing.T) {
	ctx := context.Background()
	defer ResetCache()
	ResetCache()
	if _, err := GenerateCtx(ctx, "SAF", WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	b, err := ParseBudget("nodes=1000000")
	if err != nil {
		t.Fatal(err)
	}
	res, err := GenerateCtx(ctx, "SAF", WithWorkers(1), WithBudget(b))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FromCache {
		t.Error("budgeted run was served from the cache")
	}
}

// TestNegativeWorkersRejected checks worker validation is typed usage
// error, from the core entry point.
func TestNegativeWorkersRejected(t *testing.T) {
	_, err := GenerateCtx(context.Background(), "SAF", WithWorkers(-1))
	if !errors.Is(err, ErrUsage) {
		t.Fatalf("err = %v, want ErrUsage", err)
	}
}

// TestRepeatedRunsDeterministic re-generates the same list several times
// with the cache disabled: the engine itself (not the cache) must be
// deterministic.
func TestRepeatedRunsDeterministic(t *testing.T) {
	ctx := context.Background()
	var want string
	for rep := 0; rep < 3; rep++ {
		res, err := GenerateCtx(ctx, "SAF,TF,ADF", WithWorkers(0), WithoutCache())
		if err != nil {
			t.Fatal(err)
		}
		if rep == 0 {
			want = res.Test.String()
		} else if got := res.Test.String(); got != want {
			t.Fatalf("rep %d: %q, first run %q", rep, got, want)
		}
	}
}
