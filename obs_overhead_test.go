package marchgen

import (
	"context"
	"math"
	"os"
	"strconv"
	"testing"

	"marchgen/fault"
	"marchgen/internal/core"
	"marchgen/internal/obs"
)

// TestObsOverheadBudget is the probe-layer cost guard: a generation
// with an observability run attached (spans, metrics and progress
// probes all live) must stay within the documented overhead budget of
// the probes-off baseline (ARCHITECTURE.md §7).
//
// The guard is opt-in via OBS_OVERHEAD_BUDGET_PCT (the CI obs-overhead
// job sets 2) so the plain test suite stays timing-independent. The
// workload trims SelectionLimit so each op is ~100ms and every
// benchmark round averages several iterations; each configuration is
// benchmarked in alternating rounds and compared by its minimum ns/op —
// the minimum estimates the noise-free cost of each path, which is
// what the budget is stated against.
func TestObsOverheadBudget(t *testing.T) {
	spec := os.Getenv("OBS_OVERHEAD_BUDGET_PCT")
	if spec == "" {
		t.Skip("set OBS_OVERHEAD_BUDGET_PCT to run the probe-overhead guard")
	}
	budget, err := strconv.ParseFloat(spec, 64)
	if err != nil || budget <= 0 {
		t.Fatalf("OBS_OVERHEAD_BUDGET_PCT=%q: want a positive percentage", spec)
	}
	models, err := fault.ParseList("SAF,TF,ADF,CFin")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	// A smaller selection sweep keeps the per-op cost around 100ms so
	// testing.Benchmark gets real iteration counts; the hot loops the
	// probes instrument (expansion, ATSP search, fault simulation) all
	// still run.
	opts.SelectionLimit = 4
	off := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Generate(models, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	on := func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			// A fresh run per generation, as the serving tier does per
			// request; its construction cost is part of the budget.
			if _, err := core.GenerateCtx(obs.Into(ctx, obs.NewRun()), models, opts); err != nil {
				b.Fatal(err)
			}
		}
	}

	const rounds = 5
	minOff, minOn := int64(math.MaxInt64), int64(math.MaxInt64)
	for r := 0; r < rounds; r++ {
		if ns := testing.Benchmark(off).NsPerOp(); ns < minOff {
			minOff = ns
		}
		if ns := testing.Benchmark(on).NsPerOp(); ns < minOn {
			minOn = ns
		}
	}
	over := (float64(minOn) - float64(minOff)) / float64(minOff) * 100
	t.Logf("probes off: %d ns/op, probes on: %d ns/op, overhead %.2f%% (budget %.2f%%)",
		minOff, minOn, over, budget)
	if over > budget {
		t.Fatalf("probes-enabled overhead %.2f%% exceeds the %.2f%% budget", over, budget)
	}
}
