package marchgen

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"marchgen/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite the testdata golden files from the current engine output")

// TestTable3Golden locks the exact march test and complexity generated for
// each of the paper's Table 3 fault lists against a committed golden file,
// so any change to the pipeline that alters an emitted test — even to an
// equally optimal one — is a conscious, reviewed decision:
//
//	go test -run TestTable3Golden -update .
func TestTable3Golden(t *testing.T) {
	ctx := context.Background()
	var b strings.Builder
	b.WriteString("# Generated tests for the paper's Table 3 fault lists.\n")
	b.WriteString("# Format: <faults> | <complexity>n | <march test>\n")
	for _, spec := range experiments.Table3Spec() {
		res, err := GenerateCtx(ctx, spec.Faults, WithWorkers(1), WithoutCache())
		if err != nil {
			t.Fatalf("%s: %v", spec.Faults, err)
		}
		if res.Complexity != spec.PaperComplexity {
			t.Errorf("%s: complexity %d, paper reports %d",
				spec.Faults, res.Complexity, spec.PaperComplexity)
		}
		fmt.Fprintf(&b, "%s | %dn | %s\n", spec.Faults, res.Complexity, res.Test)
	}
	got := b.String()

	path := filepath.Join("testdata", "table3.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if got != string(want) {
		t.Errorf("generated tests diverge from %s (re-run with -update if intended):\ngot:\n%swant:\n%s",
			path, got, want)
	}
}
