package march

import (
	"fmt"
	"strings"
)

// Order is the addressing order of a March element.
type Order uint8

const (
	// Any (⇕) means the element may be applied in either address order;
	// the test's fault coverage must not depend on the choice.
	Any Order = iota
	// Up (⇑) applies the element to the cells in ascending address order.
	Up
	// Down (⇓) applies the element in descending address order.
	Down
)

// String returns the Unicode arrow for the order (⇕, ⇑ or ⇓).
func (o Order) String() string {
	switch o {
	case Any:
		return "⇕"
	case Up:
		return "⇑"
	case Down:
		return "⇓"
	default:
		return fmt.Sprintf("Order(%d)", uint8(o))
	}
}

// ASCII returns a 7-bit spelling of the order: "any", "up" or "down".
func (o Order) ASCII() string {
	switch o {
	case Any:
		return "any"
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Order(%d)", uint8(o))
	}
}

// Element is one March element: an addressing order and a non-empty
// sequence of operations performed on each cell before proceeding to the
// next cell, e.g. ⇑(r0,w1).
//
// A Delay element ("Del") models the wait operation T of the paper's input
// alphabet: the test pauses long enough for data-retention faults to
// develop. A delay element carries no operations and contributes zero to
// the test complexity.
type Element struct {
	// Order is the addressing order (⇑, ⇓ or ⇕).
	Order Order
	// Ops is the operation sequence applied to each cell in turn.
	Ops []Op
	// Delay marks the wait element; Ops is empty when set.
	Delay bool
}

// Delay is the delay (wait) element used by data-retention tests.
func DelayElement() Element { return Element{Delay: true} }

// Elem builds a March element from an order and operations.
func Elem(order Order, ops ...Op) Element {
	return Element{Order: order, Ops: ops}
}

// Complexity returns the number of memory operations the element performs
// per cell (zero for a delay element).
func (e Element) Complexity() int {
	if e.Delay {
		return 0
	}
	return len(e.Ops)
}

// Validate reports an error for a malformed element (no operations and not
// a delay, or a delay carrying operations).
func (e Element) Validate() error {
	if e.Delay {
		if len(e.Ops) != 0 {
			return fmt.Errorf("march: delay element must not carry operations")
		}
		return nil
	}
	if len(e.Ops) == 0 {
		return fmt.Errorf("march: element has no operations")
	}
	return nil
}

// Equal reports structural equality of two elements.
func (e Element) Equal(f Element) bool {
	if e.Delay != f.Delay || e.Order != f.Order || len(e.Ops) != len(f.Ops) {
		return false
	}
	for i := range e.Ops {
		if e.Ops[i] != f.Ops[i] {
			return false
		}
	}
	return true
}

// String renders the element in conventional notation, e.g. "⇑(r0,w1)" or
// "Del".
func (e Element) String() string {
	if e.Delay {
		return "Del"
	}
	var b strings.Builder
	b.WriteString(e.Order.String())
	b.WriteByte('(')
	for i, op := range e.Ops {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(op.String())
	}
	b.WriteByte(')')
	return b.String()
}
