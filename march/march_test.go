package march

import (
	"strings"
	"testing"
)

func TestBitNot(t *testing.T) {
	cases := []struct{ in, want Bit }{
		{Zero, One},
		{One, Zero},
		{X, X},
	}
	for _, c := range cases {
		if got := c.in.Not(); got != c.want {
			t.Errorf("Not(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBitMatches(t *testing.T) {
	for _, b := range []Bit{Zero, One, X} {
		if !X.Matches(b) || !b.Matches(X) {
			t.Errorf("X must match %v in both directions", b)
		}
		if !b.Matches(b) {
			t.Errorf("%v must match itself", b)
		}
	}
	if Zero.Matches(One) || One.Matches(Zero) {
		t.Error("0 and 1 must not match")
	}
}

func TestBitKnown(t *testing.T) {
	if !Zero.Known() || !One.Known() || X.Known() {
		t.Errorf("Known: got %v %v %v", Zero.Known(), One.Known(), X.Known())
	}
}

func TestBitString(t *testing.T) {
	if Zero.String() != "0" || One.String() != "1" || X.String() != "-" {
		t.Errorf("Bit.String: %q %q %q", Zero, One, X)
	}
}

func TestBitOf(t *testing.T) {
	if BitOf(true) != One || BitOf(false) != Zero {
		t.Error("BitOf mapping wrong")
	}
}

func TestOpString(t *testing.T) {
	cases := map[Op]string{R0: "r0", R1: "r1", W0: "w0", W1: "w1"}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%v.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestParseOp(t *testing.T) {
	for _, s := range []string{"r0", "r1", "w0", "w1", "R0", "W1"} {
		op, err := ParseOp(s)
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", s, err)
		}
		if !strings.EqualFold(op.String(), s) {
			t.Errorf("ParseOp(%q) = %v", s, op)
		}
	}
	for _, s := range []string{"", "r", "x0", "r2", "w01"} {
		if _, err := ParseOp(s); err == nil {
			t.Errorf("ParseOp(%q): expected error", s)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !R0.IsRead() || R0.IsWrite() || !W1.IsWrite() || W1.IsRead() {
		t.Error("IsRead/IsWrite predicates wrong")
	}
}

func TestElementString(t *testing.T) {
	e := Elem(Up, R0, W1)
	if e.String() != "⇑(r0,w1)" {
		t.Errorf("element string: %q", e.String())
	}
	if DelayElement().String() != "Del" {
		t.Errorf("delay string: %q", DelayElement().String())
	}
}

func TestElementValidate(t *testing.T) {
	if err := Elem(Up).Validate(); err == nil {
		t.Error("empty element must not validate")
	}
	bad := Element{Delay: true, Ops: []Op{R0}}
	if err := bad.Validate(); err == nil {
		t.Error("delay with ops must not validate")
	}
	if err := Elem(Down, R1, W0).Validate(); err != nil {
		t.Errorf("valid element rejected: %v", err)
	}
}

func TestTestComplexity(t *testing.T) {
	mt := New(
		Elem(Any, W0),
		Elem(Up, R0, W1),
		DelayElement(),
		Elem(Down, R1, W0),
	)
	if got := mt.Complexity(); got != 5 {
		t.Errorf("Complexity = %d, want 5", got)
	}
	if mt.ComplexityLabel() != "5n" {
		t.Errorf("ComplexityLabel = %q", mt.ComplexityLabel())
	}
	if mt.Delays() != 1 {
		t.Errorf("Delays = %d, want 1", mt.Delays())
	}
	if len(mt.Ops()) != 5 {
		t.Errorf("Ops length = %d, want 5", len(mt.Ops()))
	}
}

func TestTestValidate(t *testing.T) {
	if err := (&Test{}).Validate(); err == nil {
		t.Error("empty test must not validate")
	}
	readFirst := New(Elem(Up, R0, W1))
	if err := readFirst.Validate(); err == nil {
		t.Error("read-before-write test must not validate")
	}
	ok := New(Elem(Any, W0), Elem(Up, R0))
	if err := ok.Validate(); err != nil {
		t.Errorf("valid test rejected: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0) }",
		"{ ⇕(w0); Del; ⇕(r0) }",
		"{ ⇑(w1); ⇑(r1,w0,r0); ⇓(r0) }",
	}
	for _, s := range cases {
		mt, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if mt.String() != s {
			t.Errorf("round trip: %q -> %q", s, mt.String())
		}
	}
}

func TestParseASCII(t *testing.T) {
	uni, err := Parse("{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0) }")
	if err != nil {
		t.Fatal(err)
	}
	asc, err := Parse(uni.ASCII())
	if err != nil {
		t.Fatalf("Parse(ASCII): %v", err)
	}
	if !uni.Equal(asc) {
		t.Errorf("ASCII round trip: %v != %v", uni, asc)
	}
	// Single-letter orders and missing braces are accepted too.
	short, err := Parse("a(w0); u(r0,w1); d(r1,w0)")
	if err != nil {
		t.Fatalf("Parse(short): %v", err)
	}
	if !uni.Equal(short) {
		t.Errorf("short form: %v != %v", uni, short)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"{ }",
		"{ ⇕ }",
		"{ ⇕() }",
		"{ sideways(w0) }",
		"{ ⇕(x0) }",
		"{ ⇕(w0);; ⇕(r0) }",
		"{ ⇕(w0); ⇑(r0,w1 }",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestKnownLibrary(t *testing.T) {
	names := KnownNames()
	if len(names) < 10 {
		t.Fatalf("expected a rich library, got %d tests", len(names))
	}
	for _, name := range names {
		kt, ok := Known(name)
		if !ok {
			t.Fatalf("Known(%q) missing", name)
		}
		if kt.Test.Name != name {
			t.Errorf("%s: test name %q", name, kt.Test.Name)
		}
		if got := kt.Test.Complexity(); got != kt.Complexity {
			t.Errorf("%s: declared complexity %d, body has %d", name, kt.Complexity, got)
		}
		if err := kt.Test.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", name, err)
		}
		// Round-trip through the printer and parser.
		back, err := Parse(kt.Test.String())
		if err != nil {
			t.Errorf("%s: reparse: %v", name, err)
		} else if !back.Equal(kt.Test) {
			t.Errorf("%s: round trip mismatch", name)
		}
	}
	if _, ok := Known("NoSuchTest"); ok {
		t.Error("unknown name must not resolve")
	}
}

func TestKnownIsolation(t *testing.T) {
	kt, _ := Known("MATS")
	kt.Test.Elements[0].Ops[0] = R1 // mutate the copy
	again, _ := Known("MATS")
	if again.Test.Elements[0].Ops[0] != W0 {
		t.Error("library must hand out isolated copies")
	}
}

func TestSpecificKnownComplexities(t *testing.T) {
	want := map[string]int{
		"MATS": 4, "MATS+": 5, "MATS++": 6, "MarchX": 6, "MarchY": 8,
		"MarchC": 11, "MarchC-": 10, "MarchA": 15, "MarchB": 17,
		"MarchU": 13, "MarchLR": 14, "MarchSR": 14, "MarchG": 23,
		"PMOVI": 13, "ZeroOne": 4, "MarchSS": 22, "MarchRAW": 26,
	}
	for name, k := range want {
		kt, ok := Known(name)
		if !ok {
			t.Errorf("missing %s", name)
			continue
		}
		if kt.Test.Complexity() != k {
			t.Errorf("%s: complexity %d, want %d", name, kt.Test.Complexity(), k)
		}
	}
}

func TestClone(t *testing.T) {
	orig := New(Elem(Any, W0), Elem(Up, R0, W1))
	c := orig.Clone()
	c.Elements[1].Ops[0] = R1
	if orig.Elements[1].Ops[0] != R0 {
		t.Error("Clone must deep-copy ops")
	}
}
