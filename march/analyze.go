package march

import "fmt"

// Stats summarises the operation mix of a March test.
type Stats struct {
	// Reads and Writes count operations per cell; their sum is the
	// test complexity.
	Reads, Writes int
	// Elements is the number of March elements, delays included.
	Elements int
	// Delays counts wait elements (zero-complexity).
	Delays int
	// UpElements / DownElements / AnyElements count addressing orders.
	UpElements, DownElements, AnyElements int
}

// Analyze computes the operation statistics of a test.
func Analyze(t *Test) Stats {
	var s Stats
	for _, e := range t.Elements {
		if e.Delay {
			s.Delays++
			continue
		}
		s.Elements++
		switch e.Order {
		case Up:
			s.UpElements++
		case Down:
			s.DownElements++
		default:
			s.AnyElements++
		}
		for _, op := range e.Ops {
			if op.IsRead() {
				s.Reads++
			} else {
				s.Writes++
			}
		}
	}
	return s
}

// Complement returns the data-inverse dual of a test: every operation's
// data bit is flipped (w0↔w1, r0↔r1). A memory fault model family that is
// closed under data inversion (as all the built-in models are) is covered
// by a test if and only if it is covered by the complement.
func Complement(t *Test) *Test {
	c := t.Clone()
	c.Name = suffixName(t.Name, "~")
	for e := range c.Elements {
		for o := range c.Elements[e].Ops {
			c.Elements[e].Ops[o].Data = c.Elements[e].Ops[o].Data.Not()
		}
	}
	return c
}

// Reverse returns the address-order dual: the element sequence is kept but
// every ⇑ becomes ⇓ and vice versa (⇕ is self-dual). For fault families
// closed under aggressor/victim order exchange — again, all the built-in
// ones — coverage is preserved.
func Reverse(t *Test) *Test {
	c := t.Clone()
	c.Name = suffixName(t.Name, "ᴿ")
	for e := range c.Elements {
		switch c.Elements[e].Order {
		case Up:
			c.Elements[e].Order = Down
		case Down:
			c.Elements[e].Order = Up
		}
	}
	return c
}

// Concat appends the elements of u after t, yielding a test that applies
// both in sequence (its coverage is at least the union whenever u starts
// with its own initialisation).
func Concat(t, u *Test) *Test {
	c := t.Clone()
	c.Name = ""
	for _, e := range u.Elements {
		c.Elements = append(c.Elements, Element{
			Order: e.Order, Delay: e.Delay, Ops: append([]Op(nil), e.Ops...),
		})
	}
	return c
}

// Canonical normalises a test structurally without changing its trace
// semantics: delay runs are collapsed to a single Del and empty tests are
// rejected.
func Canonical(t *Test) (*Test, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	c := &Test{Name: t.Name}
	for _, e := range t.Elements {
		if e.Delay {
			if n := len(c.Elements); n > 0 && c.Elements[n-1].Delay {
				continue
			}
			c.Elements = append(c.Elements, DelayElement())
			continue
		}
		c.Elements = append(c.Elements, Element{Order: e.Order, Ops: append([]Op(nil), e.Ops...)})
	}
	// A trailing or leading Del does nothing.
	for len(c.Elements) > 0 && c.Elements[0].Delay {
		c.Elements = c.Elements[1:]
	}
	for n := len(c.Elements); n > 0 && c.Elements[n-1].Delay; n = len(c.Elements) {
		c.Elements = c.Elements[:n-1]
	}
	if len(c.Elements) == 0 {
		return nil, fmt.Errorf("march: test %s is all delays", t)
	}
	return c, nil
}

func suffixName(name, suffix string) string {
	if name == "" {
		return ""
	}
	return name + suffix
}
