package march

import "fmt"

// OpKind distinguishes the two memory operations that can appear inside a
// March element.
type OpKind uint8

const (
	// Read is a read-and-verify operation: read the addressed cell and
	// compare the returned value against the expected data bit. In the
	// paper's notation this is the "rd" (read and verify) operation.
	Read OpKind = iota
	// Write stores the data bit into the addressed cell.
	Write
)

// String returns "r" or "w".
func (k OpKind) String() string {
	switch k {
	case Read:
		return "r"
	case Write:
		return "w"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is a single March operation: a read-and-verify or a write, together
// with its data bit. Within a March element the operation is applied to
// every memory cell in the element's addressing order.
//
// For a Read, Data is the value the fault-free memory would return; a
// mismatch observed during test application flags the memory as faulty.
type Op struct {
	// Kind selects read-and-verify or write.
	Kind OpKind
	// Data is the expected value (reads) or the stored value (writes).
	Data Bit
}

// Convenience constructors for the four March operations.
var (
	R0 = Op{Read, Zero}
	R1 = Op{Read, One}
	W0 = Op{Write, Zero}
	W1 = Op{Write, One}
)

// IsRead reports whether op is a read-and-verify operation.
func (op Op) IsRead() bool { return op.Kind == Read }

// IsWrite reports whether op is a write operation.
func (op Op) IsWrite() bool { return op.Kind == Write }

// String returns the conventional notation, e.g. "r0" or "w1".
func (op Op) String() string { return op.Kind.String() + op.Data.String() }

// ParseOp parses a single operation in conventional notation ("r0", "r1",
// "w0", "w1"; case-insensitive).
func ParseOp(s string) (Op, error) {
	if len(s) != 2 {
		return Op{}, fmt.Errorf("march: invalid operation %q", s)
	}
	var op Op
	switch s[0] {
	case 'r', 'R':
		op.Kind = Read
	case 'w', 'W':
		op.Kind = Write
	default:
		return Op{}, fmt.Errorf("march: invalid operation kind in %q", s)
	}
	switch s[1] {
	case '0':
		op.Data = Zero
	case '1':
		op.Data = One
	default:
		return Op{}, fmt.Errorf("march: invalid data bit in %q", s)
	}
	return op, nil
}
