// Package march models March tests for random-access memories.
//
// A March test is a finite sequence of March elements. Each element pairs
// an addressing order — ascending (⇑), descending (⇓), or irrelevant (⇕) —
// with a sequence of read-and-verify / write operations that are applied to
// every memory cell in that order before the test proceeds to the next
// element. The complexity of a March test is the number of operations
// applied per cell, conventionally written "kn" (MATS+ is "5n").
//
// The package provides the abstract syntax (Test, Element, Op), a parser
// and printer for the conventional notation, and a library of well-known
// March tests from the literature (MATS through March G) used by the
// coverage-audit tooling and by the reproduction of the paper's Table 3.
package march
