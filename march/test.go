package march

import (
	"fmt"
	"strings"
)

// Test is a complete March test: a name (optional) and a sequence of March
// elements, e.g. MATS+ = { ⇕(w0); ⇑(r0,w1); ⇓(r1,w0) }.
type Test struct {
	// Name is the test's conventional name; empty for generated tests.
	Name string
	// Elements is the ordered element sequence between the braces.
	Elements []Element
}

// New builds an unnamed March test from elements.
func New(elems ...Element) *Test { return &Test{Elements: elems} }

// Named builds a named March test from elements.
func Named(name string, elems ...Element) *Test {
	return &Test{Name: name, Elements: elems}
}

// Complexity returns the total number of memory operations per cell — the
// k of the conventional "kn" complexity measure (MATS+ has complexity 5,
// reported as 5n). Delay elements contribute zero.
func (t *Test) Complexity() int {
	n := 0
	for _, e := range t.Elements {
		n += e.Complexity()
	}
	return n
}

// ComplexityLabel returns the conventional complexity string, e.g. "5n".
func (t *Test) ComplexityLabel() string {
	return fmt.Sprintf("%dn", t.Complexity())
}

// Ops returns the flattened operation sequence of the test (delay elements
// contribute nothing). The slice is freshly allocated.
func (t *Test) Ops() []Op {
	var ops []Op
	for _, e := range t.Elements {
		ops = append(ops, e.Ops...)
	}
	return ops
}

// Delays returns the number of delay elements in the test.
func (t *Test) Delays() int {
	n := 0
	for _, e := range t.Elements {
		if e.Delay {
			n++
		}
	}
	return n
}

// Validate reports the first structural problem of the test: an empty test,
// a malformed element, or a read-before-write hazard (an element sequence
// whose first access to memory is a read, so the expected value is
// undefined on an uninitialised memory).
func (t *Test) Validate() error {
	if t == nil || len(t.Elements) == 0 {
		return fmt.Errorf("march: empty test")
	}
	for i, e := range t.Elements {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("march: element %d: %w", i, err)
		}
	}
	for _, e := range t.Elements {
		if e.Delay {
			continue
		}
		if e.Ops[0].IsRead() {
			return fmt.Errorf("march: test reads before any write (first operation %s)", e.Ops[0])
		}
		break
	}
	return nil
}

// Equal reports structural equality (ignoring names).
func (t *Test) Equal(u *Test) bool {
	if t == nil || u == nil {
		return t == u
	}
	if len(t.Elements) != len(u.Elements) {
		return false
	}
	for i := range t.Elements {
		if !t.Elements[i].Equal(u.Elements[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the test.
func (t *Test) Clone() *Test {
	c := &Test{Name: t.Name, Elements: make([]Element, len(t.Elements))}
	for i, e := range t.Elements {
		c.Elements[i] = Element{Order: e.Order, Delay: e.Delay, Ops: append([]Op(nil), e.Ops...)}
	}
	return c
}

// String renders the test in conventional notation:
//
//	{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0) }
func (t *Test) String() string {
	var b strings.Builder
	b.WriteString("{ ")
	for i, e := range t.Elements {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(e.String())
	}
	b.WriteString(" }")
	return b.String()
}

// ASCII renders the test using only 7-bit characters, using the up/down/any
// keywords accepted by Parse:
//
//	{ any(w0); up(r0,w1); down(r1,w0) }
func (t *Test) ASCII() string {
	var b strings.Builder
	b.WriteString("{ ")
	for i, e := range t.Elements {
		if i > 0 {
			b.WriteString("; ")
		}
		if e.Delay {
			b.WriteString("Del")
			continue
		}
		b.WriteString(e.Order.ASCII())
		b.WriteByte('(')
		for j, op := range e.Ops {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(op.String())
		}
		b.WriteByte(')')
	}
	b.WriteString(" }")
	return b.String()
}
