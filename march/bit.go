package march

import "fmt"

// Bit is a ternary memory value: logic 0, logic 1, or X.
//
// X plays two roles in this module, both inherited from the paper's
// formalism: in finite-state-machine states it is the "–" symbol (the value
// of a non-initialised memory cell), and in test-pattern initialisation
// states it is a don't-care (the pattern works for either value).
type Bit uint8

// The three ternary values. Zero and One are ordinary logic levels; X is
// the uninitialised/don't-care value.
const (
	Zero Bit = 0
	One  Bit = 1
	X    Bit = 2
)

// Not returns the complement of b. The complement of X is X.
func (b Bit) Not() Bit {
	switch b {
	case Zero:
		return One
	case One:
		return Zero
	default:
		return X
	}
}

// Known reports whether b is a concrete logic value (0 or 1).
func (b Bit) Known() bool { return b == Zero || b == One }

// Matches reports whether b is compatible with c, treating X as a wildcard
// on either side.
func (b Bit) Matches(c Bit) bool { return b == X || c == X || b == c }

// String returns "0", "1" or "-" (the paper's symbol for X).
func (b Bit) String() string {
	switch b {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "-"
	default:
		return fmt.Sprintf("Bit(%d)", uint8(b))
	}
}

// BitOf converts a bool to a Bit.
func BitOf(v bool) Bit {
	if v {
		return One
	}
	return Zero
}
