package march

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTest builds a structurally valid random March test.
func randomTest(rng *rand.Rand) *Test {
	t := &Test{}
	elems := 1 + rng.Intn(5)
	// Start with a write-only initialisation so Validate passes.
	t.Elements = append(t.Elements, Elem(Order(rng.Intn(3)), Op{Write, Bit(rng.Intn(2))}))
	for k := 1; k < elems; k++ {
		if rng.Intn(6) == 0 {
			t.Elements = append(t.Elements, DelayElement())
			continue
		}
		e := Element{Order: Order(rng.Intn(3))}
		for o := 0; o <= rng.Intn(4); o++ {
			e.Ops = append(e.Ops, Op{Kind: OpKind(rng.Intn(2)), Data: Bit(rng.Intn(2))})
		}
		t.Elements = append(t.Elements, e)
	}
	return t
}

func TestAnalyze(t *testing.T) {
	mt := mustParse("", "{ ⇕(w0); Del; ⇑(r0,w1); ⇓(r1,w0,r0) }")
	s := Analyze(mt)
	if s.Reads != 3 || s.Writes != 3 || s.Elements != 3 || s.Delays != 1 {
		t.Errorf("stats %+v", s)
	}
	if s.UpElements != 1 || s.DownElements != 1 || s.AnyElements != 1 {
		t.Errorf("order stats %+v", s)
	}
}

func TestComplementInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		mt := randomTest(rng)
		back := Complement(Complement(mt))
		if !mt.Equal(back) {
			t.Fatalf("complement not involutive: %s vs %s", mt, back)
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		mt := randomTest(rng)
		back := Reverse(Reverse(mt))
		if !mt.Equal(back) {
			t.Fatalf("reverse not involutive: %s vs %s", mt, back)
		}
	}
}

func TestComplementSwapsData(t *testing.T) {
	mt := mustParse("X", "{ ⇕(w0); ⇑(r0,w1) }")
	c := Complement(mt)
	want := mustParse("", "{ ⇕(w1); ⇑(r1,w0) }")
	if !c.Equal(want) {
		t.Errorf("complement %s, want %s", c, want)
	}
	if c.Name != "X~" {
		t.Errorf("complement name %q", c.Name)
	}
}

func TestConcat(t *testing.T) {
	a := mustParse("", "{ ⇕(w0); ⇕(r0) }")
	b := mustParse("", "{ ⇕(w1); ⇕(r1) }")
	c := Concat(a, b)
	if c.Complexity() != 4 || len(c.Elements) != 4 {
		t.Errorf("concat %s", c)
	}
	// Concat must not alias the inputs.
	c.Elements[0].Ops[0] = R1
	if a.Elements[0].Ops[0] != W0 {
		t.Error("concat aliases its inputs")
	}
}

func TestCanonical(t *testing.T) {
	mt := &Test{Elements: []Element{
		DelayElement(),
		Elem(Any, W0),
		DelayElement(),
		DelayElement(),
		Elem(Any, R0),
		DelayElement(),
	}}
	c, err := Canonical(mt)
	if err != nil {
		t.Fatal(err)
	}
	want := mustParse("", "{ ⇕(w0); Del; ⇕(r0) }")
	if !c.Equal(want) {
		t.Errorf("canonical %s, want %s", c, want)
	}
	if _, err := Canonical(&Test{Elements: []Element{DelayElement()}}); err == nil {
		t.Error("all-delay test must fail")
	}
}

// Property: parser and printer are inverse on random valid tests.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(uint8) bool {
		mt := randomTest(rng)
		back, err := Parse(mt.String())
		if err != nil {
			return false
		}
		if !back.Equal(mt) {
			return false
		}
		// The ASCII form round-trips too.
		back2, err := Parse(mt.ASCII())
		return err == nil && back2.Equal(mt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: complexity is invariant under both duals and additive under
// concatenation.
func TestQuickComplexityInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(uint8) bool {
		a, b := randomTest(rng), randomTest(rng)
		if Complement(a).Complexity() != a.Complexity() {
			return false
		}
		if Reverse(a).Complexity() != a.Complexity() {
			return false
		}
		return Concat(a, b).Complexity() == a.Complexity()+b.Complexity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
