package march

import "sort"

// KnownTest is a March test from the literature together with its
// provenance. The Complexity field repeats the figure conventionally quoted
// for the test (in operations per cell) and is verified against the test
// body by the package tests.
type KnownTest struct {
	// Test is the parsed test body.
	Test *Test
	// Complexity is the conventional operations-per-cell figure.
	Complexity int
	// Source cites where the test was introduced.
	Source string
	// Notes records coverage claims or caveats from the literature.
	Notes string
}

// mustParse parses a library test, panicking on error. It runs only at
// package init time, building the knownTests declarations below: a
// failure there is a typo in this file, not a user input, and every
// entry is exercised by the package tests. User input goes through
// Parse, which returns errors.
func mustParse(name, s string) *Test {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	t.Name = name
	return t
}

// knownTests is the library of classic March tests used as the "equivalent
// known March test" column of the paper's Table 3 and by the coverage-audit
// tooling. Notation follows van de Goor, "Testing Semiconductor Memories:
// Theory and Practice", Wiley 1991 (reference [1] of the paper).
var knownTests = map[string]KnownTest{
	"MATS": {
		Test:       mustParse("MATS", "{ ⇕(w0); ⇕(r0,w1); ⇕(r1) }"),
		Complexity: 4,
		Source:     "Nair 1979; van de Goor [1] §8",
		Notes:      "minimal SAF test for AND/OR-type address decoders",
	},
	"MATS+": {
		Test:       mustParse("MATS+", "{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0) }"),
		Complexity: 5,
		Source:     "Abadir & Reghbati 1983; van de Goor [1] §8",
		Notes:      "SAF and AF coverage for arbitrary decoder designs",
	},
	"MATS++": {
		Test:       mustParse("MATS++", "{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0) }"),
		Complexity: 6,
		Source:     "Breuer & Friedman 1976; van de Goor [1] §8",
		Notes:      "SAF, TF and AF coverage",
	},
	"MarchX": {
		Test:       mustParse("MarchX", "{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0) }"),
		Complexity: 6,
		Source:     "van de Goor [1] §9",
		Notes:      "adds inversion coupling fault (CFin) coverage",
	},
	"MarchY": {
		Test:       mustParse("MarchY", "{ ⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0) }"),
		Complexity: 8,
		Source:     "van de Goor [1] §9",
		Notes:      "March X plus linked TF coverage",
	},
	"MarchC": {
		Test:       mustParse("MarchC", "{ ⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇕(r0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0) }"),
		Complexity: 11,
		Source:     "Marinescu 1982",
		Notes:      "unlinked idempotent and inversion coupling faults; contains a redundant ⇕(r0)",
	},
	"MarchC-": {
		Test:       mustParse("MarchC-", "{ ⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0) }"),
		Complexity: 10,
		Source:     "van de Goor [1] §9 (March C minus the redundant element)",
		Notes:      "SAF, TF, AF, unlinked CFin/CFid/CFst coverage; the paper's Table 3 row 5 equivalent",
	},
	"MarchA": {
		Test:       mustParse("MarchA", "{ ⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0) }"),
		Complexity: 15,
		Source:     "Suk & Reddy 1981",
		Notes:      "linked idempotent coupling faults",
	},
	"MarchB": {
		Test:       mustParse("MarchB", "{ ⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0) }"),
		Complexity: 17,
		Source:     "Suk & Reddy 1981",
		Notes:      "March A plus linked TF coverage",
	},
	"MarchU": {
		Test:       mustParse("MarchU", "{ ⇕(w0); ⇑(r0,w1,r1,w0); ⇑(r0,w1); ⇓(r1,w0,r0,w1); ⇓(r1,w0) }"),
		Complexity: 13,
		Source:     "van de Goor & Gaydadjiev 1997",
		Notes:      "unlinked fault coverage with shorter length than March B",
	},
	"MarchLR": {
		Test:       mustParse("MarchLR", "{ ⇕(w0); ⇓(r0,w1); ⇑(r1,w0,r0,w1); ⇑(r1,w0); ⇑(r0,w1,r1,w0); ⇑(r0) }"),
		Complexity: 14,
		Source:     "van de Goor, Gaydadjiev, Yarmolik & Mikitjuk 1996",
		Notes:      "realistic linked coupling faults",
	},
	"MarchSR": {
		Test:       mustParse("MarchSR", "{ ⇓(w0); ⇑(r0,w1,r1,w0); ⇑(r0,r0); ⇑(w1); ⇓(r1,w0,r0,w1); ⇓(r1,r1) }"),
		Complexity: 14,
		Source:     "Hamdioui & van de Goor 2000",
		Notes:      "simple realistic faults incl. read destructive faults",
	},
	"MarchG": {
		Test: mustParse("MarchG",
			"{ ⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0); Del; ⇕(r0,w1,r1); Del; ⇕(r1,w0,r0) }"),
		Complexity: 23,
		Source:     "van de Goor [1] §9",
		Notes:      "March B extended with SOF and data-retention (DRF) coverage; two delay elements",
	},
	"MarchSS": {
		Test: mustParse("MarchSS",
			"{ ⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0); ⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); ⇕(r0) }"),
		Complexity: 22,
		Source:     "Hamdioui, van de Goor & Rodgers 2002",
		Notes:      "all simple static faults incl. write/read destructive and incorrect read faults",
	},
	"MarchRAW": {
		Test: mustParse("MarchRAW",
			"{ ⇕(w0); ⇑(r0,w0,r0,r0,w1,r1); ⇑(r1,w1,r1,r1,w0,r0); ⇓(r0,w0,r0,r0,w1,r1); ⇓(r1,w1,r1,r1,w0,r0); ⇕(r0) }"),
		Complexity: 26,
		Source:     "Hamdioui & Ad van de Goor 2002 (read-after-write faults)",
		Notes:      "adds back-to-back write/read pairs for dynamic read-after-write faults",
	},
	"PMOVI": {
		Test:       mustParse("PMOVI", "{ ⇓(w0); ⇑(r0,w1,r1); ⇑(r1,w0,r0); ⇓(r0,w1,r1); ⇓(r1,w0,r0) }"),
		Complexity: 13,
		Source:     "De Jonge & Smeulders 1976",
		Notes:      "moving-inversion style March test with per-element verification",
	},
	"ZeroOne": {
		Test:       mustParse("ZeroOne", "{ ⇕(w0); ⇕(r0); ⇕(w1); ⇕(r1) }"),
		Complexity: 4,
		Source:     "Breuer & Friedman 1976 (MSCAN)",
		Notes:      "detects SAF only when the address decoder is fault-free",
	},
}

// Known returns the named test from the library of classic March tests
// (e.g. "MATS+", "MarchC-"). The boolean reports whether the name is known.
func Known(name string) (KnownTest, bool) {
	kt, ok := knownTests[name]
	if !ok {
		return KnownTest{}, false
	}
	kt.Test = kt.Test.Clone() // callers must not mutate the library
	return kt, true
}

// KnownNames returns the names in the library, sorted.
func KnownNames() []string {
	names := make([]string, 0, len(knownTests))
	for name := range knownTests {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
