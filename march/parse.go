package march

import (
	"fmt"
	"strings"
)

// Parse parses a March test in conventional notation. Both the Unicode
// arrows and an ASCII spelling are accepted, and braces are optional:
//
//	{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0) }
//	any(w0); up(r0,w1); down(r1,w0)
//	{ ⇕(w0); Del; ⇕(r0) }
//
// Orders: "⇕"/"any"/"a", "⇑"/"up"/"u", "⇓"/"down"/"d" (case-insensitive).
// "Del" denotes a delay element. Operations are "r0", "r1", "w0", "w1".
func Parse(s string) (*Test, error) {
	body := strings.TrimSpace(s)
	body = strings.TrimPrefix(body, "{")
	body = strings.TrimSuffix(body, "}")
	body = strings.TrimSpace(body)
	if body == "" {
		return nil, fmt.Errorf("march: empty test string %q", s)
	}
	var t Test
	for _, part := range strings.Split(body, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("march: empty element in %q", s)
		}
		elem, err := parseElement(part)
		if err != nil {
			return nil, err
		}
		t.Elements = append(t.Elements, elem)
	}
	return &t, nil
}

func parseElement(s string) (Element, error) {
	if strings.EqualFold(s, "del") {
		return DelayElement(), nil
	}
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Element{}, fmt.Errorf("march: malformed element %q", s)
	}
	order, err := parseOrder(strings.TrimSpace(s[:open]))
	if err != nil {
		return Element{}, err
	}
	inner := s[open+1 : len(s)-1]
	var ops []Op
	for _, tok := range strings.Split(inner, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return Element{}, fmt.Errorf("march: empty operation in element %q", s)
		}
		op, err := ParseOp(tok)
		if err != nil {
			return Element{}, err
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return Element{}, fmt.Errorf("march: element %q has no operations", s)
	}
	return Element{Order: order, Ops: ops}, nil
}

func parseOrder(s string) (Order, error) {
	switch strings.ToLower(s) {
	case "⇕", "any", "a", "c", "":
		// The paper writes the don't-care order as "c"; an empty order
		// (bare parenthesised list) also means "any".
		return Any, nil
	case "⇑", "up", "u":
		return Up, nil
	case "⇓", "down", "d":
		return Down, nil
	default:
		return Any, fmt.Errorf("march: unknown addressing order %q", s)
	}
}
