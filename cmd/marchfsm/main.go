// Command marchfsm exports the behavioural memory FSMs as Graphviz
// digraphs, regenerating the paper's Figures 1 and 2:
//
//	marchfsm -good                     # Figure 1: the fault-free machine M0
//	marchfsm -fault 'CFid<u,0>'        # Figure 2: deviations drawn bold
//	marchfsm -fault 'CFid<u,0>' -instance 1
//	marchfsm -fault SAF -patterns      # print the BFE test patterns instead
package main

import (
	"flag"
	"fmt"
	"os"

	"marchgen/fault"
	"marchgen/fsm"
	"marchgen/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	good := flag.Bool("good", false, "emit the fault-free machine M0 (Figure 1)")
	faultName := flag.String("fault", "", "emit a faulty machine for this fault model")
	instance := flag.Int("instance", -1, "instance index within the model (-1 = merge all deviations as in Figure 2)")
	patterns := flag.Bool("patterns", false, "print the model's BFE test patterns instead of DOT")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	_, finish, err := obsFlags.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchfsm:", err)
		return 2
	}
	defer finish()

	switch {
	case *good:
		fmt.Print(fsm.Dot(fsm.Good()))
	case *faultName != "":
		m, err := fault.Parse(*faultName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchfsm:", err)
			return 1
		}
		if *patterns {
			for _, inst := range m.Instances {
				for _, b := range inst.BFEs {
					fmt.Printf("%-28s %s\n", inst.Name, b.Pattern)
				}
			}
			return 0
		}
		if *instance >= 0 {
			if *instance >= len(m.Instances) {
				fmt.Fprintf(os.Stderr, "marchfsm: model %s has %d instances\n", m.Name, len(m.Instances))
				return 1
			}
			fmt.Print(fsm.Dot(m.Instances[*instance].Machine))
			return 0
		}
		// Merge every deviation-modelled instance into one machine, the
		// way the paper's Figure 2 draws both aggressor orders of ⟨↑;0⟩.
		var devs []fsm.Deviation
		for _, inst := range m.Instances {
			for _, b := range inst.BFEs {
				if b.Deviation != nil {
					devs = append(devs, *b.Deviation)
				}
			}
		}
		if len(devs) == 0 {
			fmt.Fprintf(os.Stderr, "marchfsm: model %s is not deviation-modelled; pass -instance\n", m.Name)
			return 1
		}
		fmt.Print(fsm.Dot(fsm.WithDeviations(m.Name, devs...)))
	default:
		fmt.Fprintln(os.Stderr, "marchfsm: pass -good or -fault NAME")
		return 2
	}
	return 0
}
