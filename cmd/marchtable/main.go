// Command marchtable regenerates every table and figure of the paper's
// evaluation and, with -write, refreshes EXPERIMENTS.md:
//
//	marchtable                # print Table 3, Figure 4 and the comparisons
//	marchtable -write         # rewrite EXPERIMENTS.md in the repo root
//	marchtable -write -deep   # include the ~20 s optimality certifications
package main

import (
	"flag"
	"fmt"
	"os"

	"marchgen/internal/experiments"
)

func main() {
	write := flag.Bool("write", false, "rewrite EXPERIMENTS.md instead of printing to stdout")
	out := flag.String("o", "EXPERIMENTS.md", "output path used with -write")
	deep := flag.Bool("deep", false, "include the heavyweight branch-and-bound certifications")
	flag.Parse()

	body, err := experiments.Report(*deep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchtable:", err)
		os.Exit(1)
	}
	if !*write {
		fmt.Print(body)
		return
	}
	if err := os.WriteFile(*out, []byte(body), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "marchtable:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
