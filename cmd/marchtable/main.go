// Command marchtable regenerates every table and figure of the paper's
// evaluation and, with -write, refreshes EXPERIMENTS.md:
//
//	marchtable                # print Table 3, Figure 4 and the comparisons
//	marchtable -write         # rewrite EXPERIMENTS.md in the repo root
//	marchtable -write -deep   # include the ~20 s optimality certifications
//	marchtable -trace report.jsonl -pprof localhost:6060
//
// Observability: -trace/-chrome-trace/-metrics/-pprof observe the whole
// report regeneration (every table row's generation pipeline is spanned);
// see cmd/marchgen for the flag semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"marchgen/internal/experiments"
	"marchgen/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	write := flag.Bool("write", false, "rewrite EXPERIMENTS.md instead of printing to stdout")
	out := flag.String("o", "EXPERIMENTS.md", "output path used with -write")
	deep := flag.Bool("deep", false, "include the heavyweight branch-and-bound certifications")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	orun, finish, err := obsFlags.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchtable:", err)
		return 2
	}
	defer finish()

	ctx := obs.Into(context.Background(), orun)
	body, err := experiments.ReportCtx(ctx, *deep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchtable:", err)
		return 1
	}
	if !*write {
		fmt.Print(body)
		return 0
	}
	if err := os.WriteFile(*out, []byte(body), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "marchtable:", err)
		return 1
	}
	fmt.Println("wrote", *out)
	return 0
}
