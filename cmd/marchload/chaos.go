// Chaos mode: a crash-recovery harness around marchserve's durable job
// API. marchload -chaos owns the whole experiment — server subprocess,
// kill -9 schedule, recovery assertions — so CI can run one command and
// get a pass/fail verdict on the crash-safety story:
//
//	go build -o marchserve ./cmd/marchserve
//	go build -o marchload ./cmd/marchload
//	./marchload -chaos -server-bin ./marchserve -jobs 6 -kills 2
//
// The harness submits a randomized mix of generate/verify/simulate jobs,
// SIGKILLs the server on a randomized schedule (restarting it over the
// same store each time), then polls every job to a terminal state and
// asserts: the job never 404s (durability), it reaches done or a typed
// error before the deadline (liveness), its result_hash matches the
// returned result bytes (integrity), and the result document is
// byte-identical to an uninterrupted in-process computation of the same
// request (determinism across resume).
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"time"

	"marchgen"
	"marchgen/internal/budget"
	"marchgen/internal/serve"
	"marchgen/march"
)

// chaosOpts collects the -chaos flag family. Bound on the main FlagSet so
// `marchload -chaos -h` documents them alongside the load-generator flags.
type chaosOpts struct {
	enabled    bool
	serverBin  string
	dir        string
	jobs       int
	kills      int
	seed       int64
	timeout    time.Duration
	failpoints string
}

func bindChaosFlags(fs *flag.FlagSet) *chaosOpts {
	o := &chaosOpts{}
	fs.BoolVar(&o.enabled, "chaos", false, "run the crash-recovery harness instead of the load generator")
	fs.StringVar(&o.serverBin, "server-bin", "marchserve", "path to the marchserve binary the harness spawns (-chaos)")
	fs.StringVar(&o.dir, "store-dir", "", "job store directory (-chaos; default: a fresh temp dir, removed on success)")
	fs.IntVar(&o.jobs, "jobs", 6, "jobs to submit (-chaos)")
	fs.IntVar(&o.kills, "kills", 2, "kill -9 / restart cycles while jobs run (-chaos)")
	fs.Int64Var(&o.seed, "seed", 1, "randomization seed for the job mix and kill schedule (-chaos)")
	fs.DurationVar(&o.timeout, "chaos-timeout", 3*time.Minute, "overall deadline for every job to reach a terminal state (-chaos)")
	fs.StringVar(&o.failpoints, "chaos-failpoints", "", "MARCHCHAOS failpoint spec forwarded to the server subprocess (-chaos)")
	return o
}

// chaosJob pairs a submission with the recipe for recomputing its
// canonical result document locally.
type chaosJob struct {
	req    serve.JobSubmitRequest
	id     string
	expect func() ([]byte, error)
}

// chaosMix builds the deterministic job pool the harness draws from:
// generate jobs across growing fault lists (long enough to straddle a
// kill) plus coverage jobs against known tests.
func chaosMix() []chaosJob {
	gen := func(faults string) chaosJob {
		return chaosJob{
			req: serve.JobSubmitRequest{Kind: "generate", Generate: &serve.GenerateRequest{Faults: faults}},
			expect: func() ([]byte, error) {
				res, err := marchgen.Generate(faults)
				if err != nil {
					return nil, err
				}
				return json.Marshal(serve.JobGenerateResult{
					Test:       res.Test.String(),
					ASCII:      res.Test.ASCII(),
					Complexity: res.Complexity,
					Instances:  len(res.Instances),
				})
			},
		}
	}
	coverage := func(kind, known, faults string, cells int) chaosJob {
		v := &serve.VerifyRequest{Known: known, Faults: faults, Cells: cells}
		req := serve.JobSubmitRequest{Kind: kind}
		if kind == "simulate" {
			req.Simulate = v
		} else {
			req.Verify = v
		}
		return chaosJob{
			req: req,
			expect: func() ([]byte, error) {
				kt, ok := march.Known(known)
				if !ok {
					return nil, fmt.Errorf("unknown test %q", known)
				}
				var rep *marchgen.CoverageReport
				var err error
				if kind == "simulate" {
					rep, err = marchgen.VerifyN(kt.Test, faults, cells)
				} else {
					rep, err = marchgen.Verify(kt.Test, faults)
				}
				if err != nil {
					return nil, err
				}
				out := serve.JobVerifyResult{
					Test:       rep.Test.String(),
					Complexity: rep.Complexity,
					Complete:   rep.Complete,
					Missed:     rep.Missed,
				}
				if kind == "simulate" {
					out.Cells = cells
				} else {
					out.NonRedundant = rep.NonRedundant
					out.RedundantReads = rep.RedundantReads
					out.RemovableOps = rep.RemovableOps
				}
				for _, inst := range rep.Instances {
					out.Instances = append(out.Instances, serve.InstanceVerdict{
						Model:        inst.Model,
						Name:         inst.Name,
						Detected:     inst.Detected,
						DetectingOps: inst.DetectingOps,
					})
				}
				return json.Marshal(out)
			},
		}
	}
	return []chaosJob{
		gen("SAF,TF,ADF,CFin,CFid"),
		gen("SAF,TF,ADF,CFin"),
		gen("SAF,TF,ADF"),
		gen("SAF,TF"),
		gen("SAF"),
		coverage("simulate", "MarchC-", "SAF,TF", 8),
		coverage("verify", "MATS+", "SAF", 0),
	}
}

// serverProc manages the marchserve subprocess across kill/restart
// cycles; every start reuses the same store directory. The exited
// channel closes when the current process dies — by our SIGKILL or by
// its own armed kill failpoint — so callers can tell "server restarting"
// from "server slow".
type serverProc struct {
	bin, addr, dir, failpoints string
	// extraArgs appends further marchserve flags (the replica driver
	// passes -peers/-solver here).
	extraArgs []string
	cmd       *exec.Cmd
	exited    chan struct{}
}

// start launches the server (relaunching if an armed kill failpoint
// strikes it down during startup recovery) and waits for /healthz.
func (p *serverProc) start() error {
	deadline := time.Now().Add(20 * time.Second)
	for {
		if p.cmd == nil {
			args := append([]string{"-addr", p.addr, "-store", p.dir}, p.extraArgs...)
			cmd := exec.Command(p.bin, args...)
			cmd.Stderr = os.Stderr
			cmd.Env = os.Environ()
			if p.failpoints != "" {
				cmd.Env = append(cmd.Env, "MARCHCHAOS="+p.failpoints)
			}
			if err := cmd.Start(); err != nil {
				return err
			}
			p.cmd = cmd
			done := make(chan struct{})
			p.exited = done
			go func(c *exec.Cmd) { _ = c.Wait(); close(done) }(cmd)
		}
		resp, err := http.Get("http://" + p.addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-p.exited:
			p.cmd = nil // died on its own; relaunch
		default:
		}
		if time.Now().After(deadline) {
			p.kill()
			return fmt.Errorf("server on %s never became healthy", p.addr)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// kill delivers SIGKILL — no drain, no checkpoint flush, the crash the
// store's atomic-rename discipline must absorb — and reaps the process.
func (p *serverProc) kill() {
	if p.cmd == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Kill()
	<-p.exited
	p.cmd = nil
}

// ensure restarts the server when the current process has exited on its
// own (the kill failpoint fires at checkpoints); a healthy process is
// left alone.
func (p *serverProc) ensure() error {
	if p.cmd != nil {
		select {
		case <-p.exited:
			p.cmd = nil
		default:
			return nil
		}
	}
	return p.start()
}

// chaosRun executes the harness. Exit codes follow the load generator:
// 0 every assertion held, 1 a job hung/vanished/diverged, 2 usage error.
func chaosRun(o *chaosOpts) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "marchload -chaos: FAIL: "+format+"\n", args...)
		return budget.ExitFail
	}
	if o.jobs <= 0 || o.kills < 0 {
		fmt.Fprintln(os.Stderr, "marchload: -jobs must be positive and -kills non-negative")
		return budget.ExitUsage
	}
	rng := rand.New(rand.NewSource(o.seed))

	dir := o.dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "marchload-chaos-")
		if err != nil {
			return fail("%v", err)
		}
		defer os.RemoveAll(dir)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("%v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := &serverProc{bin: o.serverBin, addr: addr, dir: dir, failpoints: o.failpoints}
	if err := srv.start(); err != nil {
		return fail("start server: %v", err)
	}
	defer srv.kill()
	fmt.Fprintf(os.Stderr, "marchload -chaos: server %s, store %s, %d jobs, %d kills, seed %d\n",
		addr, dir, o.jobs, o.kills, o.seed)

	// Submit the randomized mix. Identical requests collapse onto one
	// durable job (content-addressed ids), so track unique jobs.
	mix := chaosMix()
	client := &http.Client{Timeout: 30 * time.Second}
	base := "http://" + addr
	unique := map[string]*chaosJob{}
	var order []string
	for i := 0; i < o.jobs; i++ {
		j := mix[rng.Intn(len(mix))]
		body, _ := json.Marshal(j.req)
		var sub serve.JobStatusResponse
		submitBy := time.Now().Add(30 * time.Second)
		for {
			resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err == nil {
				err = json.NewDecoder(resp.Body).Decode(&sub)
				resp.Body.Close()
				if err != nil {
					return fail("submit job %d: decode: %v", i, err)
				}
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
					return fail("submit job %d: status %d", i, resp.StatusCode)
				}
				break
			}
			// Server mid-crash (kill failpoint); revive and resubmit —
			// content addressing makes the retry idempotent.
			if time.Now().After(submitBy) {
				return fail("submit job %d: %v", i, err)
			}
			if err := srv.ensure(); err != nil {
				return fail("submit job %d: revive server: %v", i, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		if _, seen := unique[sub.ID]; !seen {
			jj := j
			jj.id = sub.ID
			unique[sub.ID] = &jj
			order = append(order, sub.ID)
		}
	}
	fmt.Fprintf(os.Stderr, "marchload -chaos: %d unique jobs in flight\n", len(order))

	// The kill schedule: SIGKILL at a randomized point mid-run, restart
	// over the same store, repeat. Early kills land while jobs are still
	// expanding their first stages; later ones hit resumed runs.
	for k := 0; k < o.kills; k++ {
		time.Sleep(time.Duration(30+rng.Intn(220)) * time.Millisecond)
		fmt.Fprintf(os.Stderr, "marchload -chaos: kill -9 #%d\n", k+1)
		srv.kill()
		if err := srv.start(); err != nil {
			return fail("restart after kill %d: %v", k+1, err)
		}
	}

	// Every job must reach a terminal state before the deadline, through
	// however many restarts — and never 404 (a durable job cannot
	// vanish).
	deadline := time.Now().Add(o.timeout)
	finals := map[string]serve.JobStatusResponse{}
	for _, id := range order {
		for {
			if time.Now().After(deadline) {
				return fail("job %s still not terminal at deadline (hang)", id)
			}
			resp, err := client.Get(base + "/v1/jobs/" + id)
			if err != nil {
				// Mid-restart (ours, or a self-kill failpoint); the job
				// record is durable — revive the server and retry.
				if err := srv.ensure(); err != nil {
					return fail("revive server: %v", err)
				}
				time.Sleep(100 * time.Millisecond)
				continue
			}
			var rec serve.JobStatusResponse
			err = json.NewDecoder(resp.Body).Decode(&rec)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				return fail("job %s vanished (404)", id)
			}
			if resp.StatusCode != http.StatusOK || err != nil {
				return fail("job %s: status %d, err %v", id, resp.StatusCode, err)
			}
			if rec.State == "done" || rec.State == "failed" {
				finals[id] = rec
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Verdicts: done jobs must carry a result whose hash matches and
	// whose bytes equal an uninterrupted local computation. A failed job
	// must be typed; that only counts as a pass when failpoints are
	// armed (injected I/O errors legitimately surface as typed failures
	// like store_io) — under pure kill -9 chaos every job must resume
	// and complete.
	resumes, typedFails := 0, 0
	for _, id := range order {
		rec := finals[id]
		resumes += rec.Resumes
		if rec.State == "failed" {
			if rec.Error == nil || rec.Error.Code == "" {
				return fail("job %s failed without a typed error", id)
			}
			if o.failpoints == "" {
				return fail("job %s failed: %s (%s)", id, rec.Error.Code, rec.Error.Message)
			}
			fmt.Fprintf(os.Stderr, "marchload -chaos: job %s failed typed under failpoints: %s (%s)\n",
				id, rec.Error.Code, rec.Error.Message)
			typedFails++
			continue
		}
		if len(rec.Result) == 0 {
			return fail("done job %s has no result document", id)
		}
		sum := sha256.Sum256(rec.Result)
		if got := hex.EncodeToString(sum[:]); got != rec.ResultHash {
			return fail("job %s: result bytes hash %s, record says %s (torn write)", id, got, rec.ResultHash)
		}
		want, err := unique[id].expect()
		if err != nil {
			return fail("job %s: local recomputation: %v", id, err)
		}
		if !bytes.Equal(rec.Result, want) {
			return fail("job %s: result diverged from uninterrupted run\n got: %s\nwant: %s", id, rec.Result, want)
		}
	}
	fmt.Fprintf(os.Stderr, "marchload -chaos: PASS: %d/%d jobs done byte-identical across %d kills (%d resumes, %d typed failures)\n",
		len(order)-typedFails, len(order), o.kills, resumes, typedFails)
	return budget.ExitOK
}
