// Command marchload is a closed-loop load generator for marchserve: -c
// concurrent workers each keep exactly one /v1/generate request in
// flight until -n total requests have completed, then the run's
// throughput and latency percentiles are printed and appended as one
// trajectory entry to -o (BENCH_serve.json by convention).
//
//	marchload -addr localhost:8080 -n 200 -c 8
//	marchload -addr localhost:8080 -n 500 -c 16 -faults 'SAF,TF;SAF,TF,ADF;CFin' -o BENCH_serve.json
//
// Workers rotate through the ';'-separated fault lists, so a mixed
// workload exercises the server's coalescer (identical in-flight
// requests), micro-batcher (overlapping model sets) and memo cache
// (repeated lists) at once. Closed-loop means measured latency is honest
// under overload: a saturated server slows the loop down instead of
// building an unbounded client-side backlog. A 503 shed is retried up to
// -retries times, honoring the server's Retry-After hint with capped
// exponential backoff and jitter; the report counts the retries.
//
// -chaos switches marchload into a crash-recovery harness instead: it
// starts its own marchserve subprocess with a durable job store, submits
// a randomized job mix to /v1/jobs, repeatedly kill -9s and restarts the
// server mid-run, and asserts that every job reaches a terminal state
// with a result byte-identical to an uninterrupted local computation (or
// a typed terminal error) — never a hang, never a vanished job.
//
//	marchload -chaos -server-bin ./marchserve -jobs 6 -kills 2
//
// Exit codes: 0 all requests succeeded (2xx), 1 some requests failed,
// 2 usage error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"marchgen/internal/budget"
	"marchgen/internal/obs"
)

// result is one completed request's measurement.
type result struct {
	latency   time.Duration
	status    int
	coalesced bool
	fromCache bool
	shed      bool
	retries   int
	// faults/test/servedBy feed the replica-set driver's per-replica
	// tally and byte-identity check (empty outside -replicas runs).
	faults   string
	test     string
	servedBy string
}

// Report is the JSON trajectory entry marchload appends to -o: one
// closed-loop run's configuration, throughput and latency distribution.
type Report struct {
	Timestamp   string   `json:"timestamp"`
	Addr        string   `json:"addr"`
	Requests    int      `json:"requests"`
	Concurrency int      `json:"concurrency"`
	FaultLists  []string `json:"fault_lists"`
	// OK/Shed/Errors partition the completed requests: 2xx, 503-shed, and
	// everything else.
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
	// Coalesced and FromCache count responses that reported sharing an
	// in-flight run or a memo-cache hit.
	Coalesced int `json:"coalesced"`
	FromCache int `json:"from_cache"`
	// Retries counts 503-shed attempts that were retried after the
	// server's Retry-After hint (capped exponential backoff with jitter);
	// a request only lands in Shed once its retry budget is spent.
	Retries int `json:"retries"`
	// ElapsedMS is the whole run's wall clock; ThroughputRPS is
	// completed requests per second over it.
	ElapsedMS     int64   `json:"elapsed_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency percentiles over completed requests, microseconds.
	P50US  int64 `json:"p50_us"`
	P90US  int64 `json:"p90_us"`
	P99US  int64 `json:"p99_us"`
	P999US int64 `json:"p999_us"`
	MaxUS  int64 `json:"max_us"`
	MeanUS int64 `json:"mean_us"`
	// The full latency distribution over the same SLO bucket boundaries
	// the server's /metrics histograms use: HistBoundsUS[i] is the
	// inclusive upper bound (µs) of HistCounts[i], and the final extra
	// count holds everything past the last bound (+Inf). Trajectory
	// entries therefore diff bucket-by-bucket across runs.
	HistBoundsUS []int64 `json:"hist_bounds_us"`
	HistCounts   []int64 `json:"hist_counts"`
	// Replica-set runs only (-replicas): the set size, how many requests
	// each replica actually served (from X-March-Served-By — a skewed
	// map is a ring-imbalance regression), and the replica killed
	// mid-run, if any.
	Replicas      int            `json:"replicas,omitempty"`
	PerReplica    map[string]int `json:"per_replica,omitempty"`
	KilledReplica string         `json:"killed_replica,omitempty"`
}

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "localhost:8080", "marchserve address")
	n := flag.Int("n", 100, "total requests to complete")
	c := flag.Int("c", 4, "concurrent closed-loop workers")
	faults := flag.String("faults", "SAF,TF;SAF,TF,ADF;SAF,TF,ADF,CFin;SAF,TF,ADF,CFin,CFid", "';'-separated fault lists the workers rotate through")
	budgetSpec := flag.String("budget", "", "per-request soft budget spec forwarded to the server")
	timeoutMS := flag.Int("timeout-ms", 0, "per-request timeout_ms forwarded to the server (0: server default)")
	retries := flag.Int("retries", 4, "max retries per request after a 503 shed (Retry-After honored, capped backoff + jitter)")
	out := flag.String("o", "", "append the run's report to this JSON trajectory file (e.g. BENCH_serve.json)")
	replicas := flag.Int("replicas", 0, "spawn and drive an N-replica marchserve set instead of targeting -addr (uses -server-bin)")
	replicaKill := flag.Int("replica-kill", 0, "with -replicas, SIGKILL this replica (1-based) about a third of the way through the run")
	chaosFlags := bindChaosFlags(flag.CommandLine)
	flag.Parse()

	if chaosFlags.enabled {
		return chaosRun(chaosFlags)
	}
	if *n <= 0 || *c <= 0 {
		fmt.Fprintln(os.Stderr, "marchload: -n and -c must be positive")
		return budget.ExitUsage
	}
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "marchload: -retries must be non-negative")
		return budget.ExitUsage
	}
	lists := strings.Split(*faults, ";")
	for i := range lists {
		lists[i] = strings.TrimSpace(lists[i])
	}
	if *replicas > 0 {
		return replicasRun(&replicaOpts{
			replicas:   *replicas,
			kill:       *replicaKill,
			serverBin:  chaosFlags.serverBin,
			n:          *n,
			c:          *c,
			lists:      lists,
			budgetSpec: *budgetSpec,
			timeoutMS:  *timeoutMS,
			retries:    *retries,
			out:        *out,
		})
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	url := "http://" + *addr + "/v1/generate"
	var seq atomic.Int64
	results := make([]result, 0, *n)
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := seq.Add(1)
				if i > int64(*n) {
					return
				}
				res := fire(client, url, lists[int(i-1)%len(lists)], *budgetSpec, *timeoutMS, *retries)
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(results, elapsed)
	rep.Addr = *addr
	rep.Requests = *n
	rep.Concurrency = *c
	rep.FaultLists = lists
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)

	fmt.Printf("requests: %d ok / %d shed / %d errors (%d retries) in %s (%.1f req/s)\n",
		rep.OK, rep.Shed, rep.Errors, rep.Retries, elapsed.Round(time.Millisecond), rep.ThroughputRPS)
	fmt.Printf("latency:  p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
		time.Duration(rep.P50US)*time.Microsecond, time.Duration(rep.P90US)*time.Microsecond,
		time.Duration(rep.P99US)*time.Microsecond, time.Duration(rep.P999US)*time.Microsecond,
		time.Duration(rep.MaxUS)*time.Microsecond)
	fmt.Printf("sharing:  %d coalesced, %d from cache\n", rep.Coalesced, rep.FromCache)

	if *out != "" {
		if err := appendReport(*out, rep); err != nil {
			fmt.Fprintln(os.Stderr, "marchload:", err)
			return budget.ExitFail
		}
	}
	if rep.Errors > 0 {
		return budget.ExitFail
	}
	return budget.ExitOK
}

// fire issues one generate request and measures it, retrying 503 sheds
// up to maxRetries times. The server's Retry-After hint seeds the delay;
// each retry doubles it (capped at 5s) with ±25% jitter so a herd of shed
// workers doesn't re-arrive in lockstep. The measured latency covers the
// whole exchange including backoff sleeps — a retried request is honest
// about the time its caller actually waited.
func fire(client *http.Client, url, faults, budgetSpec string, timeoutMS, maxRetries int) result {
	body, _ := json.Marshal(map[string]any{
		"faults":     faults,
		"budget":     budgetSpec,
		"timeout_ms": timeoutMS,
	})
	t0 := time.Now()
	var retries int
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return result{latency: time.Since(t0), status: 0, retries: retries}
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < maxRetries {
			retries++
			time.Sleep(backoff(resp.Header.Get("Retry-After"), attempt))
			continue
		}
		var parsed struct {
			Test      string `json:"test"`
			Coalesced bool   `json:"coalesced"`
			FromCache bool   `json:"from_cache"`
		}
		_ = json.Unmarshal(raw, &parsed)
		return result{
			latency:   time.Since(t0),
			status:    resp.StatusCode,
			coalesced: parsed.Coalesced,
			fromCache: parsed.FromCache,
			shed:      resp.StatusCode == http.StatusServiceUnavailable,
			retries:   retries,
			faults:    faults,
			test:      parsed.Test,
			servedBy:  resp.Header.Get("X-March-Served-By"),
		}
	}
}

// backoff computes the sleep before retry number attempt+1: the server's
// Retry-After seconds (default 100ms when absent) doubled per attempt,
// capped at 5s, jittered ±25%.
func backoff(retryAfter string, attempt int) time.Duration {
	base := 100 * time.Millisecond
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		base = time.Duration(secs) * time.Second
	}
	d := base << attempt
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	// ±25% jitter.
	j := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + j
}

// summarize folds the individual measurements into a Report.
func summarize(results []result, elapsed time.Duration) Report {
	rep := Report{ElapsedMS: elapsed.Milliseconds()}
	lat := make([]int64, 0, len(results))
	var sum int64
	for _, r := range results {
		switch {
		case r.status >= 200 && r.status < 300:
			rep.OK++
		case r.shed:
			rep.Shed++
		default:
			rep.Errors++
		}
		if r.coalesced {
			rep.Coalesced++
		}
		if r.fromCache {
			rep.FromCache++
		}
		rep.Retries += r.retries
		us := r.latency.Microseconds()
		lat = append(lat, us)
		sum += us
	}
	if len(lat) == 0 {
		return rep
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	pct := func(p float64) int64 {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	rep.P50US, rep.P90US, rep.P99US, rep.P999US = pct(0.50), pct(0.90), pct(0.99), pct(0.999)
	rep.MaxUS = lat[len(lat)-1]
	rep.MeanUS = sum / int64(len(lat))
	rep.HistBoundsUS = append([]int64(nil), obs.SLOLatencyBounds...)
	rep.HistCounts = make([]int64, len(rep.HistBoundsUS)+1)
	for _, us := range lat {
		i := sort.Search(len(rep.HistBoundsUS), func(k int) bool { return us <= rep.HistBoundsUS[k] })
		rep.HistCounts[i]++
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ThroughputRPS = float64(len(lat)) / secs
	}
	return rep
}

// appendReport appends rep to the JSON array in path, creating the file
// when absent — BENCH_serve.json is a trajectory: one entry per run.
func appendReport(path string, rep Report) error {
	var reports []Report
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &reports); err != nil {
			return fmt.Errorf("%s: existing file is not a report array: %w", path, err)
		}
	}
	reports = append(reports, rep)
	raw, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
