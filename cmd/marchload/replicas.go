// Replica-set mode: marchload -replicas N spawns its own N-replica
// marchserve set (each replica with its own durable store, all joined
// by -peers, warm solver mode so eligible sweeps distribute), drives
// the usual closed-loop workload across it, and asserts the replica
// tier's two headline properties:
//
//   - byte identity: every 2xx response's test must equal the local
//     single-process marchgen.Generate result for its fault list —
//     through forwarding, peer-fetched memo warmth, distributed sweep
//     shards and (with -replica-kill) the loss of a replica mid-run;
//
//   - visibility: the per-replica request distribution (from the
//     X-March-Served-By header) lands in the report, so a ring
//     imbalance shows up in BENCH_serve.json instead of hiding behind
//     an aggregate throughput number.
//
//     go build -o marchserve ./cmd/marchserve
//     go build -o marchload ./cmd/marchload
//     ./marchload -replicas 3 -replica-kill 2 -n 60 -c 4 -server-bin ./marchserve
//
// Workers rotate the target replica per request, so routing is
// exercised from every entry point; a transport error fails over to the
// next replica, which is how the run survives the kill.
package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"marchgen"
	"marchgen/internal/budget"
)

// replicaOpts carries the load-generator flags into a -replicas run.
type replicaOpts struct {
	replicas, kill int
	serverBin      string
	n, c           int
	lists          []string
	budgetSpec     string
	timeoutMS      int
	retries        int
	out            string
}

// replicasRun owns a whole replica-set experiment: spawn, load, kill,
// verify, report. Exit codes follow the load generator: 0 all requests
// succeeded and every response was byte-identical to the local
// computation, 1 otherwise, 2 usage error.
func replicasRun(o *replicaOpts) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "marchload -replicas: FAIL: "+format+"\n", args...)
		return budget.ExitFail
	}
	if o.replicas < 1 || o.replicas > 16 {
		fmt.Fprintln(os.Stderr, "marchload: -replicas must be in [1, 16]")
		return budget.ExitUsage
	}
	if o.kill < 0 || o.kill > o.replicas {
		fmt.Fprintln(os.Stderr, "marchload: -replica-kill must name a replica in the set (1-based) or 0")
		return budget.ExitUsage
	}
	if o.kill > 0 && o.replicas < 2 {
		fmt.Fprintln(os.Stderr, "marchload: -replica-kill needs at least 2 replicas to leave a survivor")
		return budget.ExitUsage
	}

	addrs, err := freeAddrs(o.replicas)
	if err != nil {
		return fail("allocate ports: %v", err)
	}
	peers := ""
	for i, a := range addrs {
		if i > 0 {
			peers += ","
		}
		peers += a
	}

	procs := make([]*serverProc, o.replicas)
	for i, a := range addrs {
		dir, err := os.MkdirTemp("", "marchload-replica-")
		if err != nil {
			return fail("%v", err)
		}
		defer os.RemoveAll(dir)
		procs[i] = &serverProc{
			bin:       o.serverBin,
			addr:      a,
			dir:       dir,
			extraArgs: []string{"-peers", peers, "-solver", "warm"},
		}
		if err := procs[i].start(); err != nil {
			return fail("start replica %d on %s: %v", i+1, a, err)
		}
		defer procs[i].kill()
	}
	fmt.Fprintf(os.Stderr, "marchload -replicas: %d-replica set up: %v\n", o.replicas, addrs)

	// The kill fires once roughly a third of the way through the run —
	// late enough that the victim has served (and replicated) warmth,
	// early enough that plenty of load lands on the degraded set.
	var completed atomic.Int64
	killAt := int64(o.n) / 3
	var killOnce sync.Once
	killed := ""
	maybeKill := func() {
		if o.kill == 0 || completed.Load() < killAt {
			return
		}
		killOnce.Do(func() {
			killed = addrs[o.kill-1]
			fmt.Fprintf(os.Stderr, "marchload -replicas: kill -9 replica %d (%s) after %d requests\n",
				o.kill, killed, completed.Load())
			procs[o.kill-1].kill()
		})
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	results := make([]result, 0, o.n)
	var mu sync.Mutex
	var seq atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := seq.Add(1)
				if i > int64(o.n) {
					return
				}
				faults := o.lists[int(i-1)%len(o.lists)]
				// Rotate the entry replica per request; a transport
				// error fails over to the next address in ring order.
				res := result{}
				for hop := 0; hop < len(addrs); hop++ {
					target := addrs[(int(i-1)+hop)%len(addrs)]
					res = fire(client, "http://"+target+"/v1/generate", faults, o.budgetSpec, o.timeoutMS, o.retries)
					if res.status != 0 {
						break
					}
				}
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
				completed.Add(1)
				maybeKill()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Byte identity: every 2xx response must match the uninterrupted
	// local computation of its fault list, whichever replica served it
	// and whether it was computed, memo-warm or merged from sweep shards.
	expect := map[string]string{}
	for _, list := range o.lists {
		res, err := marchgen.Generate(list)
		if err != nil {
			return fail("local %q: %v", list, err)
		}
		expect[list] = res.Test.String()
	}
	perReplica := map[string]int{}
	for _, r := range results {
		if r.status < 200 || r.status >= 300 {
			continue
		}
		served := r.servedBy
		if served == "" {
			served = "unknown"
		}
		perReplica[served]++
		if r.test != expect[r.faults] {
			return fail("response for %q diverged (served by %s)\n got: %s\nwant: %s",
				r.faults, served, r.test, expect[r.faults])
		}
	}

	rep := summarize(results, elapsed)
	rep.Addr = addrs[0]
	rep.Requests = o.n
	rep.Concurrency = o.c
	rep.FaultLists = o.lists
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)
	rep.Replicas = o.replicas
	rep.PerReplica = perReplica
	rep.KilledReplica = killed

	fmt.Printf("requests: %d ok / %d shed / %d errors (%d retries) in %s (%.1f req/s)\n",
		rep.OK, rep.Shed, rep.Errors, rep.Retries, elapsed.Round(time.Millisecond), rep.ThroughputRPS)
	fmt.Printf("latency:  p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
		time.Duration(rep.P50US)*time.Microsecond, time.Duration(rep.P90US)*time.Microsecond,
		time.Duration(rep.P99US)*time.Microsecond, time.Duration(rep.P999US)*time.Microsecond,
		time.Duration(rep.MaxUS)*time.Microsecond)
	fmt.Printf("sharing:  %d coalesced, %d from cache\n", rep.Coalesced, rep.FromCache)
	fmt.Printf("replicas: %s\n", formatDistribution(addrs, perReplica, killed))
	fmt.Println("identity: every 2xx response byte-identical to the single-process result")

	if o.out != "" {
		if err := appendReport(o.out, rep); err != nil {
			fmt.Fprintln(os.Stderr, "marchload:", err)
			return budget.ExitFail
		}
	}
	if rep.Errors > 0 {
		return fail("%d requests failed", rep.Errors)
	}
	return budget.ExitOK
}

// freeAddrs reserves n distinct loopback ports by briefly listening on
// each and returns the addresses.
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}

// formatDistribution renders the per-replica tally in set order, so the
// summary line reads the same run to run.
func formatDistribution(addrs []string, per map[string]int, killed string) string {
	out := ""
	for i, a := range addrs {
		if i > 0 {
			out += "  "
		}
		out += fmt.Sprintf("%s=%d", a, per[a])
		if a == killed {
			out += " (killed)"
		}
	}
	var extra []string
	for k := range per {
		found := false
		for _, a := range addrs {
			if a == k {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		out += fmt.Sprintf("  %s=%d", k, per[k])
	}
	return out
}
