// Command marchdiag builds fault dictionaries and diagnoses observed
// failure syndromes:
//
//	marchdiag -known MarchC- -faults SAF,TF,CFid             # print the dictionary
//	marchdiag -known MarchC- -faults SAF,TF -syndrome 3,6    # who failed ops 3 and 6?
//	marchdiag -known MarchC- -faults CFid -classes           # ambiguity classes
//	marchdiag -known MarchC- -faults CFst -timeout 10s -budget soft=2s
//
// Exit codes: 0 success, 1 failure, 2 usage error, 3 canceled or
// -timeout exceeded, 4 the soft budget ran out and the printed
// dictionary is truncated (instances not yet simulated are omitted).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"marchgen"
	"marchgen/diag"
	"marchgen/fault"
	"marchgen/internal/budget"
	"marchgen/internal/obs"
	"marchgen/march"
)

func main() { os.Exit(run()) }

func run() int {
	knownName := flag.String("known", "MarchC-", "classic March test to build the dictionary for")
	testStr := flag.String("test", "", "March test in conventional notation (overrides -known)")
	faults := flag.String("faults", "SAF,TF", "comma-separated fault list")
	syndrome := flag.String("syndrome", "", "observed failing operation indices, e.g. 3,6 (empty: print the dictionary)")
	classes := flag.Bool("classes", false, "print the ambiguity classes")
	timeout := flag.Duration("timeout", 0, "hard deadline; past it the run aborts (0: none)")
	budgetSpec := flag.String("budget", "", "soft budget, e.g. soft=2s: past the soft deadline the dictionary is truncated instead of aborted")
	workers := flag.Int("workers", 0, "worker pool size for the per-instance simulation (0: GOMAXPROCS); the dictionary is identical at any count")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	orun, finish, err := obsFlags.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchdiag:", err)
		return budget.ExitUsage
	}
	defer finish()

	ctx := obs.Into(context.Background(), orun)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var soft time.Time
	if *budgetSpec != "" {
		b, err := marchgen.ParseBudget(*budgetSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchdiag:", err)
			return budget.ExitCode(err)
		}
		soft = b.Deadline
	}
	w, err := budget.ParseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchdiag:", err)
		return budget.ExitCode(err)
	}

	var test *march.Test
	if *testStr != "" {
		var err error
		test, err = march.Parse(*testStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchdiag:", err)
			return budget.ExitFail
		}
	} else {
		kt, ok := march.Known(*knownName)
		if !ok {
			fmt.Fprintf(os.Stderr, "marchdiag: unknown test %q (known: %s)\n",
				*knownName, strings.Join(march.KnownNames(), ", "))
			return budget.ExitFail
		}
		test = kt.Test
	}
	models, err := fault.ParseList(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchdiag:", err)
		return budget.ExitCode(err)
	}
	dict, truncated, err := diag.BuildWorkersCtx(ctx, test, models, soft, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchdiag:", err)
		return budget.ExitCode(err)
	}
	if truncated {
		fmt.Fprintln(os.Stderr, "marchdiag: soft budget spent — dictionary is truncated; omitted instances cannot be ruled out")
	}

	switch {
	case *syndrome != "":
		var s diag.Syndrome
		for _, part := range strings.Split(*syndrome, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "marchdiag: bad syndrome entry %q\n", part)
				return budget.ExitUsage
			}
			s = append(s, v)
		}
		cands := dict.Diagnose(s)
		if len(cands) == 0 {
			fmt.Println("no modelled fault is consistent with this syndrome")
			if truncated {
				return budget.ExitDegraded
			}
			return budget.ExitFail
		}
		fmt.Printf("syndrome {%s} is consistent with: %s\n", s.Key(), strings.Join(cands, ", "))
	case *classes:
		fmt.Printf("ambiguity classes of %s over %s:\n", test, *faults)
		for _, class := range dict.AmbiguityClasses() {
			fmt.Printf("  %v\n", class)
		}
	default:
		fmt.Print(dict)
	}
	if truncated {
		return budget.ExitDegraded
	}
	return budget.ExitOK
}
