// Command marchdiag builds fault dictionaries and diagnoses observed
// failure syndromes:
//
//	marchdiag -known MarchC- -faults SAF,TF,CFid             # print the dictionary
//	marchdiag -known MarchC- -faults SAF,TF -syndrome 3,6    # who failed ops 3 and 6?
//	marchdiag -known MarchC- -faults CFid -classes           # ambiguity classes
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"marchgen/diag"
	"marchgen/fault"
	"marchgen/march"
)

func main() {
	knownName := flag.String("known", "MarchC-", "classic March test to build the dictionary for")
	testStr := flag.String("test", "", "March test in conventional notation (overrides -known)")
	faults := flag.String("faults", "SAF,TF", "comma-separated fault list")
	syndrome := flag.String("syndrome", "", "observed failing operation indices, e.g. 3,6 (empty: print the dictionary)")
	classes := flag.Bool("classes", false, "print the ambiguity classes")
	flag.Parse()

	var test *march.Test
	if *testStr != "" {
		var err error
		test, err = march.Parse(*testStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchdiag:", err)
			os.Exit(1)
		}
	} else {
		kt, ok := march.Known(*knownName)
		if !ok {
			fmt.Fprintf(os.Stderr, "marchdiag: unknown test %q (known: %s)\n",
				*knownName, strings.Join(march.KnownNames(), ", "))
			os.Exit(1)
		}
		test = kt.Test
	}
	models, err := fault.ParseList(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchdiag:", err)
		os.Exit(1)
	}
	dict, err := diag.Build(test, models)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchdiag:", err)
		os.Exit(1)
	}

	switch {
	case *syndrome != "":
		var s diag.Syndrome
		for _, part := range strings.Split(*syndrome, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "marchdiag: bad syndrome entry %q\n", part)
				os.Exit(1)
			}
			s = append(s, v)
		}
		cands := dict.Diagnose(s)
		if len(cands) == 0 {
			fmt.Println("no modelled fault is consistent with this syndrome")
			os.Exit(1)
		}
		fmt.Printf("syndrome {%s} is consistent with: %s\n", s.Key(), strings.Join(cands, ", "))
	case *classes:
		fmt.Printf("ambiguity classes of %s over %s:\n", test, *faults)
		for _, class := range dict.AmbiguityClasses() {
			fmt.Printf("  %v\n", class)
		}
	default:
		fmt.Print(dict)
	}
}
