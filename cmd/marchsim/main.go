// Command marchsim runs the memory fault simulator: it verifies a March
// test — given inline or by its classic name — against a fault list and
// prints the per-instance coverage and the Section 6 non-redundancy
// analysis.
//
//	marchsim -known MarchC- -faults SAF,TF,ADF,CFin,CFid
//	marchsim -test '{ any(w0); up(r0,w1); down(r1,w0) }' -faults SAF,TF
//	marchsim -known MATS+ -faults SAF -cells 16    # n-cell engine
//	marchsim -known MarchC- -faults SAF -cells 64 -timeout 10s -budget soft=2s
//
// Exit codes: 0 success (test complete), 1 failure or incomplete
// coverage, 2 usage error, 3 canceled or -timeout exceeded, 4 the soft
// budget ran out and the optional n-cell re-validation was skipped.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"marchgen"
	"marchgen/internal/budget"
	"marchgen/internal/obs"
	"marchgen/march"
)

func main() { os.Exit(run()) }

func run() int {
	testStr := flag.String("test", "", "March test in conventional notation")
	knownName := flag.String("known", "", "name of a classic March test (see -list)")
	list := flag.Bool("list", false, "print the classic March test library and exit")
	faults := flag.String("faults", "SAF", "comma-separated fault list")
	cells := flag.Int("cells", 0, "also re-validate with the n-cell memory simulator")
	perInstance := flag.Bool("per-instance", false, "print one line per fault instance")
	timeout := flag.Duration("timeout", 0, "hard deadline; past it the run aborts (0: none)")
	budgetSpec := flag.String("budget", "", "soft budget, e.g. soft=2s: past the soft deadline the optional n-cell re-validation is skipped")
	workers := flag.Int("workers", 0, "worker pool size for the per-fault simulation (0: GOMAXPROCS); the report is identical at any count")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, name := range march.KnownNames() {
			kt, _ := march.Known(name)
			fmt.Printf("%-8s %2dn  %-52s %s\n", name, kt.Complexity, kt.Test, kt.Source)
		}
		return budget.ExitOK
	}

	orun, finish, err := obsFlags.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		return budget.ExitUsage
	}
	defer finish()

	ctx := obs.Into(context.Background(), orun)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var soft time.Time
	if *budgetSpec != "" {
		b, err := marchgen.ParseBudget(*budgetSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchsim:", err)
			return budget.ExitCode(err)
		}
		soft = b.Deadline
	}
	w, err := budget.ParseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		return budget.ExitCode(err)
	}

	var test *march.Test
	switch {
	case *knownName != "":
		kt, ok := march.Known(*knownName)
		if !ok {
			fmt.Fprintf(os.Stderr, "marchsim: unknown test %q (known: %s)\n",
				*knownName, strings.Join(march.KnownNames(), ", "))
			return budget.ExitFail
		}
		test = kt.Test
	case *testStr != "":
		var err error
		test, err = march.Parse(*testStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchsim:", err)
			return budget.ExitFail
		}
	default:
		fmt.Fprintln(os.Stderr, "marchsim: pass -test or -known (or -list)")
		return budget.ExitUsage
	}

	rep, err := marchgen.VerifyWorkersCtx(ctx, test, *faults, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchsim:", err)
		return budget.ExitCode(err)
	}
	fmt.Printf("test:      %s   (%dn)\n", rep.Test, rep.Complexity)
	fmt.Printf("faults:    %s (%d instances)\n", *faults, len(rep.Instances))
	fmt.Printf("complete:  %v\n", rep.Complete)
	if rep.Complete {
		fmt.Printf("redundant: %v", !rep.NonRedundant)
		if len(rep.RemovableOps) > 0 {
			fmt.Printf(" (removable ops %v)", rep.RemovableOps)
		}
		if len(rep.RedundantReads) > 0 {
			fmt.Printf(" (redundant reads %v)", rep.RedundantReads)
		}
		fmt.Println()
	} else {
		fmt.Printf("missed:    %s\n", strings.Join(rep.Missed, ", "))
	}
	if *perInstance {
		for _, inst := range rep.Instances {
			verdict := "DETECTED"
			if !inst.Detected {
				verdict = "MISSED"
			}
			fmt.Printf("  %-28s %-8s detecting reads (op indices): %v\n", inst.Name, verdict, inst.DetectingOps)
		}
	}
	degraded := false
	if *cells > 0 {
		if !soft.IsZero() && time.Now().After(soft) {
			fmt.Fprintf(os.Stderr, "marchsim: soft budget spent — skipping the %d-cell re-validation\n", *cells)
			degraded = true
		} else {
			nrep, err := marchgen.VerifyNWorkersCtx(ctx, test, *faults, *cells, w)
			if err != nil {
				fmt.Fprintln(os.Stderr, "marchsim:", err)
				return budget.ExitCode(err)
			}
			fmt.Printf("n-cell engine (%d cells): complete=%v\n", *cells, nrep.Complete)
			if nrep.Complete != rep.Complete {
				fmt.Fprintln(os.Stderr, "marchsim: engines disagree — please report a bug")
				return budget.ExitFail
			}
		}
	}
	if !rep.Complete {
		return budget.ExitFail
	}
	if degraded {
		return budget.ExitDegraded
	}
	return budget.ExitOK
}
