// Command marchgen generates an optimal March test for a memory fault
// list:
//
//	marchgen -faults SAF,TF,ADF,CFin,CFid
//	marchgen -faults "CFid<u,0>,CFid<u,1>" -stats -ascii
//
// The generated test is validated for complete fault coverage and
// non-redundancy before being printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"marchgen"
	"marchgen/fault"
)

func main() {
	faults := flag.String("faults", "SAF", "comma-separated fault list (see -list)")
	list := flag.Bool("list", false, "print the built-in fault models and exit")
	stats := flag.Bool("stats", false, "print pipeline statistics")
	ascii := flag.Bool("ascii", false, "print the test in 7-bit notation")
	heuristic := flag.Bool("heuristic", false, "use the heuristic ATSP solver (faster, possibly suboptimal)")
	verify := flag.Bool("verify", true, "print the coverage/non-redundancy verdict")
	flag.Parse()

	if *list {
		for _, name := range fault.ModelNames() {
			m, err := fault.Parse(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-6s %2d instances  %s\n", name, len(m.Instances), m.Description)
		}
		return
	}

	var opts []marchgen.Option
	if *heuristic {
		opts = append(opts, marchgen.WithHeuristicATSP())
	}
	res, err := marchgen.Generate(*faults, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchgen:", err)
		os.Exit(1)
	}
	if *ascii {
		fmt.Printf("%s   (%dn)\n", res.Test.ASCII(), res.Complexity)
	} else {
		fmt.Printf("%s   (%dn)\n", res.Test, res.Complexity)
	}
	if *stats {
		fmt.Printf("fault instances: %d\n", len(res.Instances))
		fmt.Printf("BFE classes:     %d (selections enumerated: %d)\n", res.Stats.Classes, res.Stats.Selections)
		fmt.Printf("TPG nodes:       %d (optimal visit cost %d)\n", res.Stats.TPGNodes, res.Stats.PathCost)
		fmt.Printf("candidates:      %d\n", res.Stats.Candidates)
		fmt.Printf("elapsed:         %s\n", res.Stats.Elapsed)
	}
	if *verify {
		rep, err := marchgen.Verify(res.Test, *faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchgen: verify:", err)
			os.Exit(1)
		}
		fmt.Printf("coverage: complete=%v non-redundant=%v (%d instances)\n",
			rep.Complete, rep.NonRedundant, len(rep.Instances))
		if !rep.Complete {
			fmt.Printf("missed: %s\n", strings.Join(rep.Missed, ", "))
			os.Exit(1)
		}
	}
}
