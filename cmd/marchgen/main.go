// Command marchgen generates an optimal March test for a memory fault
// list:
//
//	marchgen -faults SAF,TF,ADF,CFin,CFid
//	marchgen -faults "CFid<u,0>,CFid<u,1>" -stats -ascii
//	marchgen -faults SAF,TF -timeout 5s -budget nodes=100000,soft=2s
//	marchgen -faults SAF,TF -trace trace.jsonl -metrics
//
// The generated test is validated for complete fault coverage and
// non-redundancy before being printed.
//
// Observability: -trace writes a JSONL span trace of the pipeline,
// -chrome-trace a Chrome trace_event file, -metrics dumps the metric
// snapshot as JSON to stderr on exit, -pprof serves net/http/pprof
// plus expvar and /metrics on the given address and -progress logs
// live engine progress lines (stage, selection fraction, incumbent
// tour cost vs lower bound, node throughput, ETA) to stderr. All are
// off by default and cost nothing when off.
//
// Exit codes: 0 success (optimal result), 1 failure, 2 usage error,
// 3 canceled or -timeout exceeded, 4 a soft budget ran out and the
// printed result is validated best-effort rather than proven optimal.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"marchgen"
	"marchgen/fault"
	"marchgen/internal/budget"
	"marchgen/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	faults := flag.String("faults", "SAF", "comma-separated fault list (see -list)")
	list := flag.Bool("list", false, "print the built-in fault models and exit")
	stats := flag.Bool("stats", false, "print pipeline statistics")
	ascii := flag.Bool("ascii", false, "print the test in 7-bit notation")
	heuristic := flag.Bool("heuristic", false, "use the heuristic ATSP solver (faster, possibly suboptimal)")
	solver := flag.String("solver", "", "exact-sweep solver mode: enumerate, warm or joint (empty: warm); the generated test is identical in every mode")
	verify := flag.Bool("verify", true, "print the coverage/non-redundancy verdict")
	timeout := flag.Duration("timeout", 0, "hard deadline; past it the run aborts (0: none)")
	budgetSpec := flag.String("budget", "", "soft resource budget, e.g. nodes=100000,selections=16,candidates=200,soft=2s (exhaustion degrades instead of failing)")
	workers := flag.Int("workers", 0, "worker pool size for simulation and exact ATSP (0: GOMAXPROCS); the result is identical at any count")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, name := range fault.ModelNames() {
			m, err := fault.Parse(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return budget.ExitFail
			}
			fmt.Printf("%-6s %2d instances  %s\n", name, len(m.Instances), m.Description)
		}
		return budget.ExitOK
	}

	orun, finish, err := obsFlags.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchgen:", err)
		return budget.ExitUsage
	}
	defer finish()

	ctx := obs.Into(context.Background(), orun)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	w, err := budget.ParseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchgen:", err)
		return budget.ExitCode(err)
	}
	opts := []marchgen.Option{marchgen.WithWorkers(w)}
	if *heuristic {
		opts = append(opts, marchgen.WithHeuristicATSP())
	}
	switch *solver {
	case "", marchgen.SolverEnumerate, marchgen.SolverWarm, marchgen.SolverJoint:
		if *solver != "" {
			opts = append(opts, marchgen.WithSolverMode(*solver))
		}
	default:
		fmt.Fprintf(os.Stderr, "marchgen: unknown -solver mode %q (want enumerate, warm or joint)\n", *solver)
		return budget.ExitUsage
	}
	if *budgetSpec != "" {
		b, err := marchgen.ParseBudget(*budgetSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchgen:", err)
			return budget.ExitUsage
		}
		opts = append(opts, marchgen.WithBudget(b))
	}

	res, err := marchgen.GenerateCtx(ctx, *faults, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchgen:", err)
		return budget.ExitCode(err)
	}
	if *ascii {
		fmt.Printf("%s   (%dn)\n", res.Test.ASCII(), res.Complexity)
	} else {
		fmt.Printf("%s   (%dn)\n", res.Test, res.Complexity)
	}
	if *stats {
		if res.Stats.FromCache {
			fmt.Println("served from the memo cache (identical to a fresh run)")
		}
		fmt.Printf("fault instances: %d\n", len(res.Instances))
		fmt.Printf("BFE classes:     %d (selections enumerated: %d)\n", res.Stats.Classes, res.Stats.Selections)
		fmt.Printf("TPG nodes:       %d (optimal visit cost %d)\n", res.Stats.TPGNodes, res.Stats.PathCost)
		fmt.Printf("candidates:      %d\n", res.Stats.Candidates)
		fmt.Printf("elapsed:         %s\n", res.Stats.Elapsed)
		for _, st := range []string{"expand", "select", "atsp", "assemble", "validate", "shrink", "fallback", "finalize"} {
			if d, ok := res.Stats.StageElapsed[st]; ok {
				fmt.Printf("  stage %-9s %s\n", st+":", d)
			}
		}
	}
	if res.Stats.Degraded {
		fmt.Fprintf(os.Stderr, "marchgen: budget ran out in stage(s) %s — result is validated complete but not proven minimal\n",
			strings.Join(res.Stats.DegradedStages, ", "))
	}
	if *verify {
		rep, err := marchgen.VerifyWorkersCtx(ctx, res.Test, *faults, w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchgen: verify:", err)
			return budget.ExitCode(err)
		}
		fmt.Printf("coverage: complete=%v non-redundant=%v (%d instances)\n",
			rep.Complete, rep.NonRedundant, len(rep.Instances))
		if !rep.Complete {
			fmt.Printf("missed: %s\n", strings.Join(rep.Missed, ", "))
			return budget.ExitFail
		}
	}
	if res.Stats.Degraded {
		return budget.ExitDegraded
	}
	return budget.ExitOK
}
