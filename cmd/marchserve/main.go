// Command marchserve serves March-test generation, verification and
// simulation over HTTP/JSON:
//
//	marchserve -addr :8080
//	marchserve -addr :8080 -max-inflight 8 -queue 128 -budget soft=2s
//	marchserve -addr :8080 -trace serve.jsonl -metrics   # flushed on drain
//
//	curl -s localhost:8080/v1/generate -d '{"faults":"SAF,TF,ADF,CFin,CFid"}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//
// Endpoints: POST /v1/generate, /v1/verify, /v1/simulate; GET /healthz,
// /readyz, /metrics. Concurrent identical generate requests coalesce onto
// one engine run; overlapping queued requests micro-batch onto shared
// permits; past the admission window requests are shed with 503 and a
// Retry-After hint. See docs/api.md for the wire schemas and the error
// table.
//
// -store DIR additionally enables the durable job API (POST /v1/jobs,
// GET /v1/jobs/{id}, GET /v1/jobs/{id}/events): results are committed to
// a crash-safe content-addressed store under DIR, repeated submissions
// are cache hits, and a restarted server re-adopts incomplete jobs and
// resumes them from their last checkpoint.
//
// -peers A,B,C (each replica started with the same list and its own
// -addr from it) forms a replica set: requests forward to the replica
// owning their content key on a consistent-hash ring, memo entries warm
// on any replica are fetched from peers, and exact warm-mode selection
// sweeps (-solver warm) distribute across the set. See
// docs/operations.md for the deployment recipe.
//
// SIGINT/SIGTERM drain gracefully: /readyz flips to 503, new requests are
// shed, in-flight requests finish (bounded by -drain-timeout), running
// jobs suspend with a durable checkpoint, then the listener closes and
// the observability flags flush.
//
// The MARCHCHAOS environment variable installs storage failpoints (see
// internal/chaos for the spec grammar, e.g. "fsync=0.01;kill=10") — the
// fault-injection hook the chaos harness (marchload -chaos) leans on.
//
// Exit codes: 0 clean shutdown, 1 listener failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"marchgen"
	"marchgen/internal/budget"
	"marchgen/internal/chaos"
	"marchgen/internal/obs"
	"marchgen/internal/serve"
	"marchgen/internal/store"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "localhost:8080", "listen address")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent engine runs (0: GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth beyond the in-flight window (0: default 64)")
	timeout := flag.Duration("timeout", 0, "default per-request hard deadline (0: 30s)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on client-requested timeouts (0: 2m)")
	budgetSpec := flag.String("budget", "", "default soft budget for generate requests, e.g. nodes=100000,soft=2s")
	workers := flag.Int("workers", 0, "default engine worker-pool size (0: GOMAXPROCS)")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch gathering window (0: default 500µs; negative: disable batching)")
	storeDir := flag.String("store", "", "durable job store directory (enables the /v1/jobs API; empty: jobs disabled)")
	solver := flag.String("solver", "", "default exact-sweep solver mode: enumerate, warm or joint (empty: warm)")
	peers := flag.String("peers", "", "comma-separated replica addresses forming a replica set with this server (must include -addr)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	if *budgetSpec != "" {
		if _, err := marchgen.ParseBudget(*budgetSpec); err != nil {
			fmt.Fprintln(os.Stderr, "marchserve:", err)
			return budget.ExitUsage
		}
	}
	w, err := budget.ParseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchserve:", err)
		return budget.ExitUsage
	}
	switch *solver {
	case "", marchgen.SolverEnumerate, marchgen.SolverWarm, marchgen.SolverJoint:
	default:
		fmt.Fprintf(os.Stderr, "marchserve: unknown -solver mode %q (want enumerate, warm or joint)\n", *solver)
		return budget.ExitUsage
	}
	peerList := splitPeers(*peers)
	if len(peerList) > 0 && !containsAddr(peerList, *addr) {
		fmt.Fprintf(os.Stderr, "marchserve: -peers %q must include the listen address %q\n", *peers, *addr)
		return budget.ExitUsage
	}

	if spec := os.Getenv("MARCHCHAOS"); spec != "" {
		if err := chaos.Enable(spec); err != nil {
			fmt.Fprintln(os.Stderr, "marchserve: MARCHCHAOS:", err)
			return budget.ExitUsage
		}
		fmt.Fprintf(os.Stderr, "marchserve: chaos failpoints armed: %s\n", spec)
	}

	orun, finish, err := obsFlags.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchserve:", err)
		return budget.ExitUsage
	}
	defer finish()

	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchserve:", err)
			return budget.ExitFail
		}
	}

	srv := serve.New(serve.Config{
		MaxInFlight:    *maxInflight,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DefaultBudget:  *budgetSpec,
		Workers:        w,
		BatchWindow:    *batchWindow,
		Store:          st,
		Obs:            orun,
		Self:           *addr,
		Peers:          peerList,
		SolverMode:     *solver,
	})
	if st != nil {
		fmt.Fprintf(os.Stderr, "marchserve: job store %s (%d incomplete jobs re-adopted)\n", *storeDir, srv.RecoveredJobs())
	}
	if len(peerList) > 1 {
		fmt.Fprintf(os.Stderr, "marchserve: replica set of %d (self %s)\n", len(peerList), *addr)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "marchserve: %v — draining (readyz now 503, new requests shed)\n", sig)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "marchserve: drain cut short after %s: %v\n", *drainTimeout, err)
		}
		_ = httpSrv.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "marchserve: serving on http://%s (inflight=%d)\n", *addr, effectiveInflight(*maxInflight))
	err = httpSrv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		<-drained
		fmt.Fprintln(os.Stderr, "marchserve: drained, bye")
		return budget.ExitOK
	}
	fmt.Fprintln(os.Stderr, "marchserve:", err)
	return budget.ExitFail
}

// effectiveInflight mirrors serve.DefaultConfig's fill-in for the
// startup log line.
func effectiveInflight(n int) int {
	if n > 0 {
		return n
	}
	return serve.DefaultConfig().MaxInFlight
}

// splitPeers parses the -peers flag: a comma-separated address list,
// blanks dropped.
func splitPeers(spec string) []string {
	var out []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func containsAddr(peers []string, addr string) bool {
	for _, p := range peers {
		if p == addr {
			return true
		}
	}
	return false
}
