// Command marchbench measures the generation engine over the paper's
// Table 3 fault lists in three configurations — sequential (one worker,
// cold cache), parallel (GOMAXPROCS workers, cold cache) and cached (warm
// memo cache) — verifies the three produce byte-identical tests, and
// writes the timings as JSON:
//
//	marchbench                          # print BENCH_generate.json content
//	marchbench -o BENCH_generate.json   # write the committed benchmark file
//	marchbench -reps 5                  # more repetitions (minimum is kept)
//
// Exit codes: 0 success, 1 failure (including a determinism violation),
// 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"marchgen"
	"marchgen/internal/budget"
	"marchgen/internal/experiments"
)

// Row is one fault list's measurement.
type Row struct {
	Faults       string  `json:"faults"`
	Complexity   int     `json:"complexity"`
	Test         string  `json:"test"`
	SequentialNS int64   `json:"sequential_ns"`
	ParallelNS   int64   `json:"parallel_ns"`
	WarmCacheNS  int64   `json:"warm_cache_ns"`
	SpeedupPar   float64 `json:"speedup_parallel"`
	SpeedupWarm  float64 `json:"speedup_warm_cache"`
}

// File is the BENCH_generate.json schema.
type File struct {
	GoMaxProcs int   `json:"gomaxprocs"`
	Reps       int   `json:"reps"`
	Rows       []Row `json:"rows"`
}

func main() {
	out := flag.String("o", "", "write the JSON here instead of stdout")
	reps := flag.Int("reps", 3, "repetitions per configuration (the minimum time is kept)")
	workers := flag.Int("workers", 0, "worker count of the parallel configuration (0: GOMAXPROCS)")
	flag.Parse()
	if *reps <= 0 {
		fmt.Fprintln(os.Stderr, "marchbench: -reps must be positive")
		os.Exit(budget.ExitUsage)
	}
	w, err := budget.ParseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchbench:", err)
		os.Exit(budget.ExitCode(err))
	}

	ctx := context.Background()
	file := File{GoMaxProcs: runtime.GOMAXPROCS(0), Reps: *reps}
	for _, spec := range experiments.Table3Spec() {
		row := Row{Faults: spec.Faults}
		// Sequential: one worker, no cache — the PR 1 engine.
		seq, t, err := measure(ctx, *reps, spec.Faults,
			marchgen.WithWorkers(1), marchgen.WithoutCache())
		if err != nil {
			fail(spec.Faults, err)
		}
		row.SequentialNS, row.Test = seq.Nanoseconds(), t
		row.Complexity = complexityOf(ctx, spec.Faults)
		// Parallel: full worker pool, still no cache.
		par, pt, err := measure(ctx, *reps, spec.Faults,
			marchgen.WithWorkers(w), marchgen.WithoutCache())
		if err != nil {
			fail(spec.Faults, err)
		}
		row.ParallelNS = par.Nanoseconds()
		// Cached: prime the shared cache once, then measure warm hits.
		marchgen.ResetCache()
		if _, err := marchgen.GenerateCtx(ctx, spec.Faults, marchgen.WithWorkers(1)); err != nil {
			fail(spec.Faults, err)
		}
		warm, wt, err := measure(ctx, *reps, spec.Faults, marchgen.WithWorkers(1))
		if err != nil {
			fail(spec.Faults, err)
		}
		row.WarmCacheNS = warm.Nanoseconds()
		if pt != t || wt != t {
			fmt.Fprintf(os.Stderr, "marchbench: %s: configurations disagree: sequential %q, parallel %q, cached %q\n",
				spec.Faults, t, pt, wt)
			os.Exit(budget.ExitFail)
		}
		row.SpeedupPar = float64(row.SequentialNS) / float64(row.ParallelNS)
		row.SpeedupWarm = float64(row.SequentialNS) / float64(row.WarmCacheNS)
		file.Rows = append(file.Rows, row)
	}

	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchbench:", err)
		os.Exit(budget.ExitFail)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "marchbench:", err)
		os.Exit(budget.ExitFail)
	}
	fmt.Println("wrote", *out)
}

// measure runs GenerateCtx reps times and returns the minimum wall time
// plus the generated test's text (identical across repetitions, or the
// pipeline's determinism is broken and the caller aborts).
func measure(ctx context.Context, reps int, faults string, opts ...marchgen.Option) (time.Duration, string, error) {
	best, text := time.Duration(0), ""
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		res, err := marchgen.GenerateCtx(ctx, faults, opts...)
		if err != nil {
			return 0, "", err
		}
		d := time.Since(t0)
		if i == 0 || d < best {
			best = d
		}
		if s := res.Test.String(); text == "" {
			text = s
		} else if s != text {
			return 0, "", fmt.Errorf("non-deterministic result: %q vs %q", s, text)
		}
	}
	return best, text, nil
}

func complexityOf(ctx context.Context, faults string) int {
	res, err := marchgen.GenerateCtx(ctx, faults, marchgen.WithWorkers(1))
	if err != nil {
		fail(faults, err)
	}
	return res.Complexity
}

func fail(faults string, err error) {
	fmt.Fprintf(os.Stderr, "marchbench: %s: %v\n", faults, err)
	os.Exit(budget.ExitCode(err))
}
