// Command marchbench measures the generation engine over the paper's
// Table 3 fault lists in three configurations — sequential (one worker,
// cold cache), parallel (GOMAXPROCS workers, cold cache) and cached (warm
// memo cache) — verifies the three produce byte-identical tests, and
// writes the timings as JSON:
//
//	marchbench                          # print BENCH_generate.json content
//	marchbench -o BENCH_generate.json   # write the committed benchmark file
//	marchbench -reps 5                  # more repetitions (minimum is kept)
//
// Each row also reports the warm-phase memo cache traffic (hits, misses,
// evictions) and the parallel configuration's worker-pool utilisation,
// measured on a separate instrumented run so the timed runs stay
// observation-free.
//
// Exit codes: 0 success, 1 failure (including a determinism violation),
// 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"marchgen"
	"marchgen/internal/budget"
	"marchgen/internal/experiments"
	"marchgen/internal/obs"
)

// Row is one fault list's measurement.
type Row struct {
	Faults       string  `json:"faults"`
	Complexity   int     `json:"complexity"`
	Test         string  `json:"test"`
	SequentialNS int64   `json:"sequential_ns"`
	ParallelNS   int64   `json:"parallel_ns"`
	WarmCacheNS  int64   `json:"warm_cache_ns"`
	SpeedupPar   float64 `json:"speedup_parallel"`
	SpeedupWarm  float64 `json:"speedup_warm_cache"`
	// Warm-phase memo cache traffic: deltas of the process-wide cache
	// counters across the warm-cache repetitions.
	WarmCacheHits      uint64 `json:"warm_cache_hits"`
	WarmCacheMisses    uint64 `json:"warm_cache_misses"`
	WarmCacheEvictions uint64 `json:"warm_cache_evictions"`
	// Pool utilisation of the parallel configuration: the fraction of
	// workers × wall-time the pool's workers spent busy, from a separate
	// instrumented run (the timed runs are observation-free).
	PoolWorkers     int     `json:"pool_workers"`
	PoolUtilization float64 `json:"pool_utilization"`
}

// File is the BENCH_generate.json schema.
type File struct {
	GoMaxProcs int   `json:"gomaxprocs"`
	Reps       int   `json:"reps"`
	Rows       []Row `json:"rows"`
}

func main() { os.Exit(run()) }

func run() int {
	out := flag.String("o", "", "write the JSON here instead of stdout")
	reps := flag.Int("reps", 3, "repetitions per configuration (the minimum time is kept)")
	workers := flag.Int("workers", 0, "worker count of the parallel configuration (0: GOMAXPROCS)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	if *reps <= 0 {
		fmt.Fprintln(os.Stderr, "marchbench: -reps must be positive")
		return budget.ExitUsage
	}
	w, err := budget.ParseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchbench:", err)
		return budget.ExitCode(err)
	}
	orun, finish, err := obsFlags.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchbench:", err)
		return budget.ExitUsage
	}
	defer finish()

	// The observability run (when requested) only observes the extra
	// instrumented runs; the timed repetitions stay observation-free.
	obsCtx := obs.Into(context.Background(), orun)
	ctx := context.Background()
	file := File{GoMaxProcs: runtime.GOMAXPROCS(0), Reps: *reps}
	for _, spec := range experiments.Table3Spec() {
		row := Row{Faults: spec.Faults, PoolWorkers: w}
		// Sequential: one worker, no cache — the PR 1 engine.
		seq, t, err := measure(ctx, *reps, spec.Faults,
			marchgen.WithWorkers(1), marchgen.WithoutCache())
		if err != nil {
			return fail(spec.Faults, err)
		}
		row.SequentialNS, row.Test = seq.Nanoseconds(), t
		// Parallel: full worker pool, still no cache.
		par, pt, err := measure(ctx, *reps, spec.Faults,
			marchgen.WithWorkers(w), marchgen.WithoutCache())
		if err != nil {
			return fail(spec.Faults, err)
		}
		row.ParallelNS = par.Nanoseconds()
		// Instrumented parallel run: complexity, pool utilisation. With
		// -trace/-metrics the CLI's shared run accumulates across rows, so
		// the utilisation is computed from per-row snapshot deltas.
		irunCtx, before := obsCtx, map[string]int64(nil)
		if orun != nil {
			before = orun.Snapshot()
		} else {
			irunCtx = obs.Into(context.Background(), obs.NewRun())
		}
		ires, err := marchgen.GenerateCtx(irunCtx, spec.Faults,
			marchgen.WithWorkers(w), marchgen.WithoutCache())
		if err != nil {
			return fail(spec.Faults, err)
		}
		row.Complexity = ires.Complexity
		row.PoolUtilization = poolUtilization(before, ires.Stats.Metrics, w)
		// Cached: prime the shared cache once, then measure warm hits.
		marchgen.ResetCache()
		if _, err := marchgen.GenerateCtx(ctx, spec.Faults, marchgen.WithWorkers(1)); err != nil {
			return fail(spec.Faults, err)
		}
		cacheBefore := marchgen.CacheSnapshot()
		warm, wt, err := measure(ctx, *reps, spec.Faults, marchgen.WithWorkers(1))
		if err != nil {
			return fail(spec.Faults, err)
		}
		cacheAfter := marchgen.CacheSnapshot()
		row.WarmCacheNS = warm.Nanoseconds()
		row.WarmCacheHits = cacheAfter.Hits - cacheBefore.Hits
		row.WarmCacheMisses = cacheAfter.Misses - cacheBefore.Misses
		row.WarmCacheEvictions = cacheAfter.Evictions - cacheBefore.Evictions
		if pt != t || wt != t || ires.Test.String() != t {
			fmt.Fprintf(os.Stderr, "marchbench: %s: configurations disagree: sequential %q, parallel %q, cached %q, instrumented %q\n",
				spec.Faults, t, pt, wt, ires.Test)
			return budget.ExitFail
		}
		row.SpeedupPar = float64(row.SequentialNS) / float64(row.ParallelNS)
		row.SpeedupWarm = float64(row.SequentialNS) / float64(row.WarmCacheNS)
		file.Rows = append(file.Rows, row)
	}

	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchbench:", err)
		return budget.ExitFail
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return budget.ExitOK
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "marchbench:", err)
		return budget.ExitFail
	}
	fmt.Println("wrote", *out)
	return budget.ExitOK
}

// measure runs GenerateCtx reps times and returns the minimum wall time
// plus the generated test's text (identical across repetitions, or the
// pipeline's determinism is broken and the caller aborts).
func measure(ctx context.Context, reps int, faults string, opts ...marchgen.Option) (time.Duration, string, error) {
	best, text := time.Duration(0), ""
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		res, err := marchgen.GenerateCtx(ctx, faults, opts...)
		if err != nil {
			return 0, "", err
		}
		d := time.Since(t0)
		if i == 0 || d < best {
			best = d
		}
		if s := res.Test.String(); text == "" {
			text = s
		} else if s != text {
			return 0, "", fmt.Errorf("non-deterministic result: %q vs %q", s, text)
		}
	}
	return best, text, nil
}

// poolUtilization sums the per-worker busy-time counters of one
// instrumented generation (the delta between the run's snapshot before
// the call and after it) and normalises by workers × generation wall
// time, yielding the busy fraction of the pool in [0, 1] (rounded to
// three decimals). A nil before map means the run was fresh.
func poolUtilization(before, after map[string]int64, workers int) float64 {
	elapsed := after["generate.elapsed_ns"] - before["generate.elapsed_ns"]
	if elapsed <= 0 || workers <= 0 {
		return 0
	}
	var busy int64
	for name, v := range after {
		if strings.HasPrefix(name, "pool.worker.") && strings.HasSuffix(name, ".busy_ns") {
			busy += v - before[name]
		}
	}
	u := float64(busy) / (float64(elapsed) * float64(workers))
	return math.Round(u*1000) / 1000
}

func fail(faults string, err error) int {
	fmt.Fprintf(os.Stderr, "marchbench: %s: %v\n", faults, err)
	return budget.ExitCode(err)
}
