// Command marchbench measures the generation engine over the paper's
// Table 3 fault lists in three configurations — sequential (one worker,
// cold cache), parallel (GOMAXPROCS workers, cold cache) and cached (warm
// memo cache) — verifies the three produce byte-identical tests, times the
// coverage-evaluation stage on the bit-parallel kernel against the scalar
// oracle (with allocations per evaluation), and writes the timings as
// JSON:
//
//	marchbench                          # print a BENCH_generate.json entry
//	marchbench -o BENCH_generate.json   # append/refresh the committed entry
//	marchbench -reps 5                  # more repetitions (minimum is kept)
//	marchbench -label kernel            # entry label in the bench file
//	marchbench -require-kernel          # fail unless the kernel engine ran
//	marchbench -require-solver-gain 3   # fail unless warm beats enumerate 3x
//	marchbench -solver-baseline BENCH_generate.json -require-adaptive-gain 1.5
//	                                    # fail unless warm beats the committed
//	                                    # solver-warmstart entry 1.5x further
//
// BENCH_generate.json is an append-only list of labelled entries: writing
// with -o loads the existing file (the legacy single-sweep schema is
// surfaced as a "pre-kernel" entry) and upserts this run's entry by label,
// so before/after engine comparisons live in one committed file.
//
// Each row also reports the warm-phase memo cache traffic (hits, misses,
// evictions) and the parallel configuration's worker-pool utilisation,
// measured on a separate instrumented run so the timed runs stay
// observation-free. The same instrumented run backs -require-kernel: the
// flag fails the process when sim.kernel_traces is zero or
// sim.scalar_fallbacks is non-zero, guarding CI against a silent fallback
// to the scalar engine.
//
// Exit codes: 0 success, 1 failure (including a determinism violation or
// a -require-kernel violation), 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"marchgen"
	"marchgen/fault"
	"marchgen/internal/budget"
	"marchgen/internal/experiments"
	"marchgen/internal/obs"
	"marchgen/internal/sim"
	"marchgen/march"
)

func main() { os.Exit(run()) }

// adaptiveBaselineLabel names the committed bench entry the
// -require-adaptive-gain guard compares warm node counts against: the
// campaign taken just before the bound-escalation ladder landed.
const adaptiveBaselineLabel = "solver-warmstart"

// baselineWarmNodes returns the baseline entry's warm-mode node count
// for the given fault list (0 when the row is absent or unmeasured).
func baselineWarmNodes(e *experiments.BenchEntry, faults string) int64 {
	for _, r := range e.Rows {
		if r.Faults == faults {
			return r.SolverNodesWarm
		}
	}
	return 0
}

func run() int {
	out := flag.String("o", "", "append the entry to this JSON file instead of stdout")
	reps := flag.Int("reps", 3, "repetitions per configuration (the minimum time is kept)")
	workers := flag.Int("workers", 0, "worker count of the parallel configuration (0: GOMAXPROCS)")
	label := flag.String("label", "kernel", "label of the bench-file entry this run writes")
	requireKernel := flag.Bool("require-kernel", false,
		"fail unless the instrumented run used the bit-parallel kernel with no scalar fallback")
	requireSolverGain := flag.Float64("require-solver-gain", 0,
		"fail unless the warm solver cuts total exact-solver nodes by at least this factor on every complexity-6 row, with the joint solver no worse (0: don't check)")
	solverBaseline := flag.String("solver-baseline", "",
		"bench file holding the committed solver-warmstart entry to compare warm node counts against (used by -require-adaptive-gain)")
	requireAdaptiveGain := flag.Float64("require-adaptive-gain", 0,
		"fail unless warm-mode nodes are at least this factor below the -solver-baseline entry's on some complexity-6 row, and no worse on any (0: don't check)")
	obsFlags := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	if *reps <= 0 {
		fmt.Fprintln(os.Stderr, "marchbench: -reps must be positive")
		return budget.ExitUsage
	}
	var adaptiveBase *experiments.BenchEntry
	if *requireAdaptiveGain > 0 {
		if *solverBaseline == "" {
			fmt.Fprintln(os.Stderr, "marchbench: -require-adaptive-gain needs -solver-baseline")
			return budget.ExitUsage
		}
		base, err := experiments.LoadBenchFile(*solverBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marchbench:", err)
			return budget.ExitFail
		}
		if adaptiveBase = base.Entry(adaptiveBaselineLabel); adaptiveBase == nil {
			fmt.Fprintf(os.Stderr, "marchbench: %s has no %q entry to compare against\n",
				*solverBaseline, adaptiveBaselineLabel)
			return budget.ExitFail
		}
	}
	if *label == "" {
		fmt.Fprintln(os.Stderr, "marchbench: -label must be non-empty")
		return budget.ExitUsage
	}
	w, err := budget.ParseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchbench:", err)
		return budget.ExitCode(err)
	}
	orun, finish, err := obsFlags.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchbench:", err)
		return budget.ExitUsage
	}
	defer finish()

	// The observability run (when requested) only observes the extra
	// instrumented runs; the timed repetitions stay observation-free.
	obsCtx := obs.Into(context.Background(), orun)
	ctx := context.Background()
	entry := experiments.BenchEntry{Label: *label, GoMaxProcs: runtime.GOMAXPROCS(0), Reps: *reps}
	adaptiveAchieved := false
	for _, spec := range experiments.Table3Spec() {
		row := experiments.BenchRow{Faults: spec.Faults, PoolWorkers: w}
		// Sequential: one worker, no cache — the PR 1 engine.
		seq, t, err := measure(ctx, *reps, spec.Faults,
			marchgen.WithWorkers(1), marchgen.WithoutCache())
		if err != nil {
			return fail(spec.Faults, err)
		}
		row.SequentialNS, row.Test = seq.Nanoseconds(), t
		// Parallel: full worker pool, still no cache.
		par, pt, err := measure(ctx, *reps, spec.Faults,
			marchgen.WithWorkers(w), marchgen.WithoutCache())
		if err != nil {
			return fail(spec.Faults, err)
		}
		row.ParallelNS = par.Nanoseconds()
		// Instrumented parallel run: complexity, pool utilisation, kernel
		// usage. With -trace/-metrics the CLI's shared run accumulates
		// across rows, so deltas come from per-row snapshots.
		irunCtx, before := obsCtx, map[string]int64(nil)
		if orun != nil {
			before = orun.Snapshot()
		} else {
			irunCtx = obs.Into(context.Background(), obs.NewRun())
		}
		ires, err := marchgen.GenerateCtx(irunCtx, spec.Faults,
			marchgen.WithWorkers(w), marchgen.WithoutCache())
		if err != nil {
			return fail(spec.Faults, err)
		}
		row.Complexity = ires.Complexity
		row.PoolUtilization = poolUtilization(before, ires.Stats.Metrics, w)
		if *requireKernel {
			traces := ires.Stats.Metrics[obs.CounterKernelTraces] - before[obs.CounterKernelTraces]
			fallbacks := ires.Stats.Metrics[obs.CounterScalarFallbacks] - before[obs.CounterScalarFallbacks]
			if traces <= 0 || fallbacks != 0 {
				fmt.Fprintf(os.Stderr, "marchbench: %s: kernel not engaged (kernel_traces=%d, scalar_fallbacks=%d)\n",
					spec.Faults, traces, fallbacks)
				return budget.ExitFail
			}
		}
		// Kernel vs scalar: time the coverage-evaluation stage alone on
		// the generated test and its full instance list.
		if err := measureEval(&row, *reps, ires.Test, ires.Instances); err != nil {
			return fail(spec.Faults, err)
		}
		// Solver modes: total exact-solver nodes and wall time per mode,
		// single worker and cold cache so the counts are deterministic.
		if err := measureSolver(&row, *reps, spec.Faults, t); err != nil {
			return fail(spec.Faults, err)
		}
		if *requireSolverGain > 0 && spec.PaperComplexity == 6 {
			if float64(row.SolverNodesEnumerate) < *requireSolverGain*float64(row.SolverNodesWarm) ||
				row.SolverNodesJoint >= row.SolverNodesEnumerate {
				fmt.Fprintf(os.Stderr, "marchbench: %s: solver gain below %.1fx (enumerate=%d warm=%d joint=%d nodes)\n",
					spec.Faults, *requireSolverGain,
					row.SolverNodesEnumerate, row.SolverNodesWarm, row.SolverNodesJoint)
				return budget.ExitFail
			}
		}
		if adaptiveBase != nil && spec.PaperComplexity == 6 {
			baseWarm := baselineWarmNodes(adaptiveBase, spec.Faults)
			if baseWarm <= 0 {
				fmt.Fprintf(os.Stderr, "marchbench: %s: %q baseline entry has no warm node count for this row\n",
					spec.Faults, adaptiveBaselineLabel)
				return budget.ExitFail
			}
			if row.SolverNodesWarm > baseWarm {
				fmt.Fprintf(os.Stderr, "marchbench: %s: warm solver regressed against the %q baseline (%d nodes, baseline %d)\n",
					spec.Faults, adaptiveBaselineLabel, row.SolverNodesWarm, baseWarm)
				return budget.ExitFail
			}
			if float64(baseWarm) >= *requireAdaptiveGain*float64(row.SolverNodesWarm) {
				adaptiveAchieved = true
			}
		}
		// Cached: prime the shared cache once, then measure warm hits.
		marchgen.ResetCache()
		if _, err := marchgen.GenerateCtx(ctx, spec.Faults, marchgen.WithWorkers(1)); err != nil {
			return fail(spec.Faults, err)
		}
		cacheBefore := marchgen.CacheSnapshot()
		warm, wt, err := measure(ctx, *reps, spec.Faults, marchgen.WithWorkers(1))
		if err != nil {
			return fail(spec.Faults, err)
		}
		cacheAfter := marchgen.CacheSnapshot()
		row.WarmCacheNS = warm.Nanoseconds()
		row.WarmCacheHits = cacheAfter.Hits - cacheBefore.Hits
		row.WarmCacheMisses = cacheAfter.Misses - cacheBefore.Misses
		row.WarmCacheEvictions = cacheAfter.Evictions - cacheBefore.Evictions
		if pt != t || wt != t || ires.Test.String() != t {
			fmt.Fprintf(os.Stderr, "marchbench: %s: configurations disagree: sequential %q, parallel %q, cached %q, instrumented %q\n",
				spec.Faults, t, pt, wt, ires.Test)
			return budget.ExitFail
		}
		row.SpeedupPar = float64(row.SequentialNS) / float64(row.ParallelNS)
		row.SpeedupWarm = float64(row.SequentialNS) / float64(row.WarmCacheNS)
		entry.Rows = append(entry.Rows, row)
	}
	if adaptiveBase != nil && !adaptiveAchieved {
		fmt.Fprintf(os.Stderr, "marchbench: no complexity-6 row beat the %q baseline by %.1fx warm nodes\n",
			adaptiveBaselineLabel, *requireAdaptiveGain)
		return budget.ExitFail
	}

	file := &experiments.BenchFile{}
	if *out != "" {
		if existing, err := experiments.LoadBenchFile(*out); err == nil {
			file = existing
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "marchbench:", err)
			return budget.ExitFail
		}
	}
	file.Upsert(entry)
	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marchbench:", err)
		return budget.ExitFail
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return budget.ExitOK
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "marchbench:", err)
		return budget.ExitFail
	}
	fmt.Println("wrote", *out)
	return budget.ExitOK
}

// evalInnerIters is the inner-loop length of one coverage-evaluation
// timing repetition: single evaluations run in microseconds, so the inner
// loop keeps the timer resolution honest.
const evalInnerIters = 32

// measureEval times one coverage evaluation of the test against the
// instance list on both engines (minimum over reps of an averaged inner
// loop) and counts heap allocations per evaluation, filling the row's
// kernel columns.
func measureEval(row *experiments.BenchRow, reps int, t *march.Test, instances []fault.Instance) error {
	engines := []struct {
		engine sim.Engine
		ns     *int64
		allocs *uint64
	}{
		{sim.Kernel, &row.KernelEvalNS, &row.KernelAllocsPerOp},
		{sim.Scalar, &row.ScalarEvalNS, &row.ScalarAllocsPerOp},
	}
	ctx := context.Background()
	for _, e := range engines {
		// Warm once: compiles and caches the kernel's blocks so the timed
		// loop measures evaluation, not compilation.
		if _, err := sim.EvaluateEngine(ctx, t, instances, 1, e.engine); err != nil {
			return err
		}
		best := int64(0)
		var allocs uint64
		for r := 0; r < reps; r++ {
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			for i := 0; i < evalInnerIters; i++ {
				if _, err := sim.EvaluateEngine(ctx, t, instances, 1, e.engine); err != nil {
					return err
				}
			}
			d := time.Since(t0).Nanoseconds() / evalInnerIters
			runtime.ReadMemStats(&m1)
			if r == 0 || d < best {
				best = d
				allocs = (m1.Mallocs - m0.Mallocs) / evalInnerIters
			}
		}
		*e.ns, *e.allocs = best, allocs
	}
	if row.KernelEvalNS > 0 {
		row.SpeedupKernel = float64(row.ScalarEvalNS) / float64(row.KernelEvalNS)
	}
	return nil
}

// measureSolver fills the row's solver-mode columns: one instrumented
// single-worker cold-cache generation per mode for the deterministic node
// totals (Held–Karp states + branch-and-bound expansions + enumeration
// nodes), plus timed repetitions of the warm and joint modes. Every mode
// must reproduce the baseline test byte for byte.
func measureSolver(row *experiments.BenchRow, reps int, faults, baseline string) error {
	ctx := context.Background()
	for _, mode := range []string{marchgen.SolverEnumerate, marchgen.SolverWarm, marchgen.SolverJoint} {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		res, err := marchgen.GenerateCtx(ctx, faults,
			marchgen.WithSolverMode(mode), marchgen.WithWorkers(1),
			marchgen.WithoutCache(), marchgen.WithMetrics())
		runtime.ReadMemStats(&m1)
		if err != nil {
			return err
		}
		if s := res.Test.String(); s != baseline {
			return fmt.Errorf("solver mode %s diverges: %q vs %q", mode, s, baseline)
		}
		m := res.Stats.Metrics
		total := m["atsp.heldkarp.states"] + m["atsp.bb.expanded"] + m["atsp.enum.nodes"]
		switch mode {
		case marchgen.SolverEnumerate:
			row.SolverNodesEnumerate = total
			row.SolverAllocsEnumerate = m1.Mallocs - m0.Mallocs
		case marchgen.SolverWarm:
			row.SolverNodesWarm = total
			row.SolverAllocsWarm = m1.Mallocs - m0.Mallocs
			row.SolverEscalations = m["atsp.bb.escalated"] + m["atsp.enum.escalated"]
			row.SolverEscalationPrunes = m["atsp.bb.escpruned"] + m["atsp.enum.escpruned"]
		case marchgen.SolverJoint:
			row.SolverNodesJoint = total
		}
	}
	if row.SolverNodesWarm > 0 {
		row.SolverNodeReduction = float64(row.SolverNodesEnumerate) / float64(row.SolverNodesWarm)
	}
	warm, _, err := measure(ctx, reps, faults,
		marchgen.WithSolverMode(marchgen.SolverWarm), marchgen.WithWorkers(1), marchgen.WithoutCache())
	if err != nil {
		return err
	}
	row.SolverWarmNS = warm.Nanoseconds()
	joint, _, err := measure(ctx, reps, faults,
		marchgen.WithSolverMode(marchgen.SolverJoint), marchgen.WithWorkers(1), marchgen.WithoutCache())
	if err != nil {
		return err
	}
	row.SolverJointNS = joint.Nanoseconds()
	return nil
}

// measure runs GenerateCtx reps times and returns the minimum wall time
// plus the generated test's text (identical across repetitions, or the
// pipeline's determinism is broken and the caller aborts).
func measure(ctx context.Context, reps int, faults string, opts ...marchgen.Option) (time.Duration, string, error) {
	best, text := time.Duration(0), ""
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		res, err := marchgen.GenerateCtx(ctx, faults, opts...)
		if err != nil {
			return 0, "", err
		}
		d := time.Since(t0)
		if i == 0 || d < best {
			best = d
		}
		if s := res.Test.String(); text == "" {
			text = s
		} else if s != text {
			return 0, "", fmt.Errorf("non-deterministic result: %q vs %q", s, text)
		}
	}
	return best, text, nil
}

// poolUtilization sums the per-worker busy-time counters of one
// instrumented generation (the delta between the run's snapshot before
// the call and after it) and normalises by workers × generation wall
// time, yielding the busy fraction of the pool in [0, 1] (rounded to
// three decimals). A nil before map means the run was fresh.
func poolUtilization(before, after map[string]int64, workers int) float64 {
	elapsed := after["generate.elapsed_ns"] - before["generate.elapsed_ns"]
	if elapsed <= 0 || workers <= 0 {
		return 0
	}
	var busy int64
	for name, v := range after {
		if strings.HasPrefix(name, "pool.worker.") && strings.HasSuffix(name, ".busy_ns") {
			busy += v - before[name]
		}
	}
	u := float64(busy) / (float64(elapsed) * float64(workers))
	return math.Round(u*1000) / 1000
}

func fail(faults string, err error) int {
	fmt.Fprintf(os.Stderr, "marchbench: %s: %v\n", faults, err)
	return budget.ExitCode(err)
}
